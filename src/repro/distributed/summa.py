"""Sparse SUMMA over a 2-D grid, with full communication accounting.

The classic 2-D distributed SpGEMM (Buluc & Gilbert): ``A``, ``B`` and
``C`` are block-distributed over a ``p_r x p_c`` grid; the multiplication
runs in stages — at stage ``k``, the owners of ``A``'s block-column ``k``
broadcast their blocks along grid rows, the owners of ``B``'s block-row
``k`` broadcast along grid columns, and every process multiplies the two
received panels into its local ``C`` block.

This implementation *actually computes* the product (each local multiply
is a real TileSpGEMM call on the block operands, partial results summed),
while tracking what a physical deployment would pay:

* per-process sent/received bytes per stage (CSR wire size of the blocks);
* an alpha-beta communication time model;
* per-process local-compute estimates through the GPU cost model, so the
  distributed critical path = max over processes of (compute + comm).

The tests verify the distributed product equals the single-device one for
every grid shape, and the bench reports the scaling/communication trade
the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.sparse_ops import add
from repro.baselines.base import get_algorithm
from repro.distributed.grid import ProcessGrid
from repro.errors import CommFailure, InvalidInputError
from repro.formats.csr import CSRMatrix
from repro.gpu.costmodel import estimate_run
from repro.gpu.device import RTX3090, DeviceModel
from repro.obs.context import current_obs
from repro.runtime.context import current_fault_plan

__all__ = ["DistributedSpGEMMResult", "summa_spgemm", "csr_wire_bytes"]

#: Default interconnect: NVLink-class alpha (latency) and beta (1/bandwidth).
DEFAULT_ALPHA_S: float = 5e-6
DEFAULT_BETA_S_PER_BYTE: float = 1.0 / 50e9


def csr_wire_bytes(m: CSRMatrix) -> int:
    """Bytes to ship a CSR block: 4-byte indptr/indices + 8-byte values."""
    return int(4 * (m.indptr.size + m.nnz) + 8 * m.nnz)


@dataclass
class DistributedSpGEMMResult:
    """Outcome of one distributed SUMMA run."""

    c: CSRMatrix
    grid: ProcessGrid
    stages: int
    #: bytes received per process (grid-shaped array)
    recv_bytes: np.ndarray
    #: bytes sent per process
    sent_bytes: np.ndarray
    #: estimated local compute seconds per process
    compute_s: np.ndarray
    #: estimated communication seconds per process (alpha-beta model)
    comm_s: np.ndarray
    flops: int = 0
    per_stage_volume: List[int] = field(default_factory=list)
    #: broadcast transfers repeated after an injected communication fault
    retransmits: int = 0

    @property
    def total_comm_volume(self) -> int:
        """Total bytes moved across the interconnect."""
        return int(self.recv_bytes.sum())

    @property
    def critical_path_s(self) -> float:
        """Makespan: the slowest process's compute + communication."""
        return float((self.compute_s + self.comm_s).max())

    @property
    def comm_fraction(self) -> float:
        """Share of the critical path spent communicating."""
        cp = self.critical_path_s
        if cp <= 0:
            return 0.0
        worst = int(np.argmax(self.compute_s + self.comm_s))
        return float(self.comm_s.flat[worst] / cp)

    def compute_imbalance(self) -> float:
        """Max over mean of per-process compute (1.0 = perfectly balanced)."""
        mean = self.compute_s.mean()
        return float(self.compute_s.max() / mean) if mean > 0 else 1.0


def summa_spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    grid: ProcessGrid,
    device: DeviceModel = RTX3090,
    method: str = "tilespgemm",
    alpha_s: float = DEFAULT_ALPHA_S,
    beta_s_per_byte: float = DEFAULT_BETA_S_PER_BYTE,
    fault_plan=None,
    max_retransmits: int = 0,
) -> DistributedSpGEMMResult:
    """Multiply ``a @ b`` with sparse SUMMA on the given process grid.

    Parameters
    ----------
    a, b:
        Global operands in CSR form.
    grid:
        The 2-D process grid; SUMMA runs ``max(p_rows, p_cols)`` stages
        over a tile-aligned blocking of the contraction dimension.
    device:
        Device model for the per-process local-compute estimates.
    method:
        Registered SpGEMM method used for the local block multiplies.
    alpha_s, beta_s_per_byte:
        Interconnect latency/inverse-bandwidth of the time model.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` observing each
        point-to-point transfer of the panel broadcasts (defaults to the
        active execution context's plan).
    max_retransmits:
        Lost transfers are resent up to this many times per transfer, each
        resend re-charged to the alpha-beta model; a transfer still failing
        after that raises :class:`~repro.errors.CommFailure`.
    """
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError("dimension mismatch")
    spgemm = get_algorithm(method)
    plan = fault_plan if fault_plan is not None else current_fault_plan()
    obs = current_obs()
    retransmits = 0

    def transfer(tag: str, pi: int, pj: int, nbytes: int) -> float:
        """One point-to-point leg of a broadcast; returns extra comm
        seconds paid for retransmissions (first send is charged by the
        caller)."""
        nonlocal retransmits
        if plan is None:
            return 0.0
        extra = 0.0
        for attempt in range(max_retransmits + 1):
            try:
                plan.on_broadcast(f"stage{tag}->({pi},{pj})")
                return extra
            except CommFailure:
                if attempt == max_retransmits:
                    raise
                retransmits += 1
                extra += alpha_s + nbytes * beta_s_per_byte
                if obs.enabled:
                    obs.metrics.inc("summa_retransmits_total")
                    obs.tracer.instant(
                        "retransmit",
                        cat="summa.comm",
                        tag=tag,
                        dest=[pi, pj],
                        nbytes=nbytes,
                    )
        return extra

    row_blocks = grid.row_blocks(a.shape[0])
    col_blocks = grid.col_blocks(b.shape[1])
    # The contraction dimension is staged like SUMMA's panel loop; use the
    # finer of the two grid dimensions for the panel count.
    stages = max(grid.p_rows, grid.p_cols)
    k_blocks = ProcessGrid(stages, 1, grid.tile_size).row_blocks(a.shape[1])

    recv = np.zeros((grid.p_rows, grid.p_cols))
    sent = np.zeros((grid.p_rows, grid.p_cols))
    compute = np.zeros((grid.p_rows, grid.p_cols))
    comm = np.zeros((grid.p_rows, grid.p_cols))
    per_stage_volume: List[int] = []
    flops = 0

    local_c: Dict[Tuple[int, int], CSRMatrix] = {}

    for k, (k0, k1) in enumerate(k_blocks):
        stage_volume = 0
        # Panels of this stage, sliced per grid row / grid column.
        a_panels = [a.submatrix(rb, (k0, k1)) for rb in row_blocks]
        b_panels = [b.submatrix((k0, k1), cb) for cb in col_blocks]
        # Owners of this stage's panels: the grid column holding A's
        # global columns [k0, k1) and the grid row holding B's rows.
        a_col_blocks = grid.col_blocks(a.shape[1])
        owner_pj = next(
            (p for p, (lo, hi) in enumerate(a_col_blocks) if lo <= k0 < max(hi, lo + 1)),
            stages and (grid.p_cols - 1),
        )
        b_row_blocks = grid.row_blocks(b.shape[0])
        owner_pi = next(
            (p for p, (lo, hi) in enumerate(b_row_blocks) if lo <= k0 < max(hi, lo + 1)),
            grid.p_rows - 1,
        )
        # The stage runs as SUMMA does: the panel broadcasts complete,
        # then every process multiplies the received panels.  The two
        # sub-phases carry their own spans so a trace shows the paper's
        # broadcast / multiply / retransmit split per stage.
        with obs.tracer.span(f"stage {k}", cat="summa.stage", stage=k):
            with obs.tracer.span("broadcast", cat="summa.comm", stage=k):
                for pi in range(grid.p_rows):
                    a_bytes = csr_wire_bytes(a_panels[pi])
                    for pj in range(grid.p_cols):
                        b_bytes = csr_wire_bytes(b_panels[pj])
                        # Broadcast accounting: the A panel crosses the
                        # grid row and the B panel the grid column; the
                        # panel owner already holds its block and neither
                        # sends to nor receives from itself.
                        if grid.p_cols > 1 and pj != owner_pj:
                            recv[pi, pj] += a_bytes
                            sent[pi, owner_pj] += a_bytes
                            comm[pi, pj] += alpha_s + a_bytes * beta_s_per_byte
                            comm[pi, pj] += transfer(f"{k}:A", pi, pj, a_bytes)
                            stage_volume += a_bytes
                        if grid.p_rows > 1 and pi != owner_pi:
                            recv[pi, pj] += b_bytes
                            sent[owner_pi, pj] += b_bytes
                            comm[pi, pj] += alpha_s + b_bytes * beta_s_per_byte
                            comm[pi, pj] += transfer(f"{k}:B", pi, pj, b_bytes)
                            stage_volume += b_bytes
            with obs.tracer.span("multiply", cat="summa.compute", stage=k):
                for pi in range(grid.p_rows):
                    a_blk = a_panels[pi]
                    for pj in range(grid.p_cols):
                        b_blk = b_panels[pj]
                        if a_blk.nnz == 0 or b_blk.nnz == 0:
                            continue
                        res = spgemm(a_blk, b_blk)
                        flops += res.flops
                        compute[pi, pj] += estimate_run(res, device).seconds
                        key = (pi, pj)
                        if key in local_c:
                            local_c[key] = add(local_c[key], res.c)
                        else:
                            local_c[key] = res.c
        per_stage_volume.append(stage_volume)
        if obs.enabled:
            obs.metrics.inc("summa_stages_total")
            obs.metrics.inc("summa_comm_bytes_total", stage_volume)

    # Assemble the global C from the owner blocks.
    from repro.formats.coo import COOMatrix

    rows_parts, cols_parts, vals_parts = [], [], []
    for (pi, pj), blk in local_c.items():
        r0 = row_blocks[pi][0]
        c0 = col_blocks[pj][0]
        coo = blk.to_coo()
        rows_parts.append(coo.row + r0)
        cols_parts.append(coo.col + c0)
        vals_parts.append(coo.val)
    if rows_parts:
        c = COOMatrix(
            (a.shape[0], b.shape[1]),
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        ).to_csr()
    else:
        c = CSRMatrix.empty((a.shape[0], b.shape[1]))

    return DistributedSpGEMMResult(
        c=c,
        grid=grid,
        stages=stages,
        recv_bytes=recv,
        sent_bytes=sent,
        compute_s=compute,
        comm_s=comm,
        flops=flops,
        per_stage_volume=per_stage_volume,
        retransmits=retransmits,
    )
