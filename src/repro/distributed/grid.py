"""2-D process grids and block ownership for distributed SpGEMM."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A ``p_rows x p_cols`` process grid over a matrix's index space.

    Rows and columns of the global matrix are split into contiguous block
    ranges, aligned to tile boundaries so every owner block converts
    cleanly into the tiled format.

    Parameters
    ----------
    p_rows, p_cols:
        Grid dimensions (process count is their product).
    tile_size:
        Alignment unit for the block boundaries (16 matches TileSpGEMM).
    """

    p_rows: int
    p_cols: int
    tile_size: int = 16

    def __post_init__(self) -> None:
        if self.p_rows < 1 or self.p_cols < 1:
            raise ValueError("grid dimensions must be positive")

    @property
    def num_processes(self) -> int:
        return self.p_rows * self.p_cols

    def row_blocks(self, nrows: int) -> List[Tuple[int, int]]:
        """Contiguous, tile-aligned row ranges, one per grid row."""
        return self._blocks(nrows, self.p_rows)

    def col_blocks(self, ncols: int) -> List[Tuple[int, int]]:
        """Contiguous, tile-aligned column ranges, one per grid column."""
        return self._blocks(ncols, self.p_cols)

    def _blocks(self, extent: int, parts: int) -> List[Tuple[int, int]]:
        T = self.tile_size
        tiles = -(-extent // T) if extent else 0
        # Distribute tiles as evenly as possible, then convert to indices.
        base = tiles // parts
        extra = tiles % parts
        out: List[Tuple[int, int]] = []
        start_tile = 0
        for p in range(parts):
            size = base + (1 if p < extra else 0)
            end_tile = start_tile + size
            out.append((min(start_tile * T, extent), min(end_tile * T, extent)))
            start_tile = end_tile
        return out

    def owner(self, i: int, j: int, shape: Tuple[int, int]) -> Tuple[int, int]:
        """Grid coordinates of the process owning global entry ``(i, j)``."""
        rb = self.row_blocks(shape[0])
        cb = self.col_blocks(shape[1])
        pi = next(p for p, (lo, hi) in enumerate(rb) if lo <= i < hi or (i == lo == hi))
        pj = next(p for p, (lo, hi) in enumerate(cb) if lo <= j < hi or (j == lo == hi))
        return pi, pj

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.p_rows}x{self.p_cols} grid ({self.num_processes} processes)"
