"""Distributed blocked SpGEMM (extension): SUMMA over the tile grid.

The paper's related-work section notes that TileSpGEMM's data structure
"is more like the distributed blocking SpGEMM methods, but optimized for
GPUs without concerns on communication costs" (Buluc & Gilbert's 2-D
formulations).  This extension closes that loop: it runs the classic
sparse SUMMA algorithm over a 2-D process grid whose blocks align with the
tile grid, computing the same product while *accounting for the
communication* a multi-device deployment would pay — panel broadcast
volumes per stage, an alpha-beta time model, and per-process compute
balance.
"""

from repro.distributed.grid import ProcessGrid
from repro.distributed.summa import DistributedSpGEMMResult, summa_spgemm

__all__ = ["ProcessGrid", "DistributedSpGEMMResult", "summa_spgemm"]
