"""GPU execution model: devices, scheduling, and per-method cost models.

This package is the documented substitution for the paper's physical
RTX 3060/3090 testbed (see DESIGN.md): algorithms report measured work
statistics, and :func:`~repro.gpu.costmodel.estimate_run` converts them to
estimated kernel times on a :class:`~repro.gpu.device.DeviceModel`.
"""

from repro.gpu.costmodel import (
    COST,
    GPUEstimate,
    KernelEstimate,
    estimate_family,
    estimate_run,
)
from repro.gpu.device import DEVICES, RTX3060, RTX3090, DeviceModel
from repro.gpu.memtracker import MemoryCurve, memory_curve
from repro.gpu.scheduler import greedy_makespan, imbalance_factor

__all__ = [
    "COST",
    "DEVICES",
    "RTX3060",
    "RTX3090",
    "DeviceModel",
    "GPUEstimate",
    "KernelEstimate",
    "MemoryCurve",
    "estimate_run",
    "estimate_family",
    "greedy_makespan",
    "imbalance_factor",
    "memory_curve",
]
