"""Parameterised GPU device models (the paper's Table 1 testbed).

With no physical GPU available, the repository reproduces the paper's
performance comparisons on an *execution model*: each algorithm reports
how much work of which kind it did (per-warp task durations, bytes moved,
allocations), and the model turns that into estimated kernel time on a
described device.  This module holds the device descriptions; the two
presets are the paper's RTX 3060 and RTX 3090 with their public
specifications.

The model is deliberately simple — a latency/occupancy-aware roofline, not
a cycle-accurate simulator — because the paper's figures are about *ratios*
(method A over method B, 3090 over 3060), which survive a first-order
model.  EXPERIMENTS.md records where the shapes hold and where they do
not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceModel", "RTX3060", "RTX3090", "DEVICES"]


@dataclass(frozen=True)
class DeviceModel:
    """A GPU for the execution model.

    Attributes
    ----------
    name:
        Display name.
    num_sms:
        Streaming multiprocessors.
    cuda_cores:
        Total FP32 cores (Table 1 lists 3584 / 10496).
    clock_ghz:
        Boost clock.
    dram_bw_gbs:
        Peak DRAM bandwidth in GB/s (Table 1: 360.0 / 936.2).
    dram_gb:
        DRAM capacity in GB (out-of-memory detection).
    shared_mem_kb_per_sm:
        Scratchpad capacity per SM.
    resident_warps_per_sm:
        Warp slots the scheduler keeps busy per SM.
    warp_width:
        Threads per warp.
    tensor_tflops_fp16:
        Tensor-core half-precision throughput (tSparse path).
    kernel_launch_us:
        Fixed host-side cost per kernel launch.
    malloc_us_per_mb, malloc_fixed_us:
        Device-allocation cost model (Gelado & Garland observe allocation
        is a large, size-dependent cost — the paper's Figure 10 shows ~20 %
        of runtime in allocation).
    dram_latency_cycles:
        Round-trip latency of an uncoalesced global-memory access.
    """

    name: str
    num_sms: int
    cuda_cores: int
    clock_ghz: float
    dram_bw_gbs: float
    dram_gb: float
    shared_mem_kb_per_sm: int
    resident_warps_per_sm: int = 32
    warp_width: int = 32
    tensor_tflops_fp16: float = 50.0
    kernel_launch_us: float = 5.0
    malloc_us_per_mb: float = 1.5
    malloc_fixed_us: float = 3.0
    dram_latency_cycles: int = 400
    issue_width: int = 4  #: warp instructions an SM can issue per cycle

    @property
    def dram_capacity_bytes(self) -> int:
        """DRAM capacity in bytes (Table 1: 12 GB / 24 GB, decimal units).

        This is the out-of-memory threshold of the execution model and the
        natural ``budget_bytes`` for a
        :class:`~repro.util.alloc.AllocationTracker` simulating this card.
        """
        return int(self.dram_gb * 1e9)

    @property
    def warp_slots(self) -> int:
        """Concurrently resident warps across the device."""
        return self.num_sms * self.resident_warps_per_sm

    @property
    def issue_slots(self) -> int:
        """Warp-instruction issue slots per cycle across the device.

        This is the scheduling width of the cost model: the device retires
        at most ``issue_slots`` warp-instructions per clock, so warp-task
        cycle counts are list-scheduled onto this many slots (resident
        warps beyond it only hide latency, which the per-operation cycle
        costs already include).
        """
        return self.num_sms * self.issue_width

    @property
    def peak_gflops_fp64(self) -> float:
        """FP64 peak (GeForce Ampere: 1/64 of the FP32 FMA rate)."""
        return self.cuda_cores * self.clock_ghz * 2.0 / 64.0

    @property
    def flop_rate(self) -> float:
        """Usable FP64-class flops/second for the roofline term."""
        return self.peak_gflops_fp64 * 1e9

    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.clock_ghz * 1e9

    def scaled_memory(self, factor: float) -> "DeviceModel":
        """A copy with DRAM capacity scaled by ``factor``.

        The synthetic workloads are scaled-down analogues of the paper's
        matrices; scaling the capacity by the same factor preserves the
        out-of-memory behaviour of the full-size experiments (see
        DESIGN.md's substitution table).
        """
        from dataclasses import replace

        return replace(self, dram_gb=self.dram_gb * factor)

    def seconds_for_bytes(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` at peak DRAM bandwidth."""
        return float(nbytes) / (self.dram_bw_gbs * 1e9)

    def malloc_seconds(self, nbytes: float, num_allocs: int = 1) -> float:
        """Allocation-cost model for ``num_allocs`` allocations totalling
        ``nbytes``."""
        return (
            num_allocs * self.malloc_fixed_us * 1e-6
            + (float(nbytes) / 1e6) * self.malloc_us_per_mb * 1e-6
        )


#: The paper's two Ampere GPUs (Table 1).
RTX3060 = DeviceModel(
    name="RTX 3060",
    num_sms=28,
    cuda_cores=3584,
    clock_ghz=1.78,
    dram_bw_gbs=360.0,
    dram_gb=12.0,
    shared_mem_kb_per_sm=100,
    tensor_tflops_fp16=51.0,
)

RTX3090 = DeviceModel(
    name="RTX 3090",
    num_sms=82,
    cuda_cores=10496,
    clock_ghz=1.70,
    dram_bw_gbs=936.2,
    dram_gb=24.0,
    shared_mem_kb_per_sm=100,
    tensor_tflops_fp16=142.0,
)

DEVICES = {"rtx3060": RTX3060, "rtx3090": RTX3090}
