"""Warp-task scheduling: turning per-task cycle counts into kernel time.

A GPU kernel's compute time is governed by how its tasks (here: one warp
per tile, row or bin item) pack onto the device's resident warp slots.
Uniform tasks pack perfectly; a few huge tasks (the paper's long rows)
leave most slots idle — the *load imbalance* that motivates TileSpGEMM.

:func:`greedy_makespan` simulates the hardware's greedy dispatch (each
task goes to the earliest-free slot, in submission order) exactly for
moderate task counts and falls back to the tight analytic bound
``max(total/slots, longest_task)`` for very large ones; the two agree to
within a task length by the standard list-scheduling argument.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["greedy_makespan", "imbalance_factor"]

#: Above this many tasks the exact heap simulation is skipped.
_EXACT_LIMIT = 300_000


def greedy_makespan(durations: np.ndarray, workers: int, exact_limit: int = _EXACT_LIMIT) -> float:
    """Makespan of greedy list scheduling of ``durations`` on ``workers``.

    Parameters
    ----------
    durations:
        Per-task durations (cycles), non-negative, in dispatch order.
    workers:
        Parallel worker (warp-slot) count.
    exact_limit:
        Task-count threshold above which the analytic bound replaces the
        exact simulation.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("negative task duration")
    workers = max(int(workers), 1)
    total = float(durations.sum())
    longest = float(durations.max())
    lower = max(total / workers, longest)
    if durations.size <= workers:
        return longest
    if durations.size > exact_limit:
        return lower
    # Exact greedy simulation: each task starts on the earliest-free slot.
    heap = [0.0] * workers
    heapq.heapify(heap)
    for d in durations:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(d))
    return max(heap)


def imbalance_factor(durations: np.ndarray, workers: int) -> float:
    """Ratio of achieved makespan to the perfect-balance lower bound.

    1.0 means the work packs perfectly; large values mean a few tasks
    dominate (the paper's webbase-1M rows reach >100x here under row-row
    decomposition).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return 1.0
    total = float(durations.sum())
    if total <= 0:
        return 1.0
    workers = max(int(workers), 1)
    balanced = total / workers
    return greedy_makespan(durations, workers) / max(balanced, 1e-30)
