"""Warp-task scheduling: turning per-task cycle counts into kernel time.

A GPU kernel's compute time is governed by how its tasks (here: one warp
per tile, row or bin item) pack onto the device's resident warp slots.
Uniform tasks pack perfectly; a few huge tasks (the paper's long rows)
leave most slots idle — the *load imbalance* that motivates TileSpGEMM.

:func:`greedy_makespan` simulates the hardware's greedy dispatch (each
task goes to the earliest-free slot, in submission order) exactly for
moderate task counts and falls back to the tight analytic bound
``max(total/slots, longest_task)`` for very large ones; the two agree to
within a task length by the standard list-scheduling argument.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["greedy_makespan", "imbalance_factor", "TaskSchedule", "schedule_tasks"]

#: Above this many tasks the exact heap simulation is skipped.
_EXACT_LIMIT = 300_000


def greedy_makespan(durations: np.ndarray, workers: int, exact_limit: int = _EXACT_LIMIT) -> float:
    """Makespan of greedy list scheduling of ``durations`` on ``workers``.

    Parameters
    ----------
    durations:
        Per-task durations (cycles), non-negative, in dispatch order.
    workers:
        Parallel worker (warp-slot) count.
    exact_limit:
        Task-count threshold above which the analytic bound replaces the
        exact simulation.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("negative task duration")
    workers = max(int(workers), 1)
    total = float(durations.sum())
    longest = float(durations.max())
    lower = max(total / workers, longest)
    if durations.size <= workers:
        return longest
    if durations.size > exact_limit:
        return lower
    # Exact greedy simulation: each task starts on the earliest-free slot.
    heap = [0.0] * workers
    heapq.heapify(heap)
    for d in durations:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(d))
    return max(heap)


@dataclass
class TaskSchedule:
    """A full greedy schedule: per-task slot assignment and interval.

    The same dispatch order :func:`greedy_makespan` simulates, but with
    the assignment retained — the raw material the observability layer
    lays out on virtual SM/slot tracks (see
    :func:`repro.obs.gputrace.emit_gpu_timeline`).

    Attributes
    ----------
    slot, start, end:
        Per-task arrays (same order as the input durations): the worker
        slot each task ran on and its [start, end) interval, in the same
        unit as the durations (cycles).
    workers:
        Worker-slot count the schedule was built for.
    """

    slot: np.ndarray
    start: np.ndarray
    end: np.ndarray
    workers: int

    @property
    def makespan(self) -> float:
        """Completion time of the last task (0.0 for an empty schedule)."""
        return float(self.end.max()) if self.end.size else 0.0


def schedule_tasks(durations: np.ndarray, workers: int) -> TaskSchedule:
    """Greedy list schedule of ``durations`` with the assignment retained.

    Identical dispatch rule to :func:`greedy_makespan`'s exact branch
    (each task starts on the earliest-free slot, in submission order),
    but always simulated exactly — callers wanting a timeline need the
    per-task intervals, so there is no analytic shortcut to fall back
    on.  Cost is ``O(n log w)``; cap the task count upstream when
    tracing huge kernels.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if np.any(durations < 0):
        raise ValueError("negative task duration")
    workers = max(int(workers), 1)
    n = durations.size
    slot = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.float64)
    end = np.zeros(n, dtype=np.float64)
    heap = [(0.0, w) for w in range(workers)]
    for i in range(n):
        t, w = heapq.heappop(heap)
        slot[i] = w
        start[i] = t
        end[i] = t + float(durations[i])
        heapq.heappush(heap, (end[i], w))
    return TaskSchedule(slot=slot, start=start, end=end, workers=workers)


def imbalance_factor(durations: np.ndarray, workers: int) -> float:
    """Ratio of achieved makespan to the perfect-balance lower bound.

    1.0 means the work packs perfectly; large values mean a few tasks
    dominate (the paper's webbase-1M rows reach >100x here under row-row
    decomposition).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return 1.0
    total = float(durations.sum())
    if total <= 0:
        return 1.0
    workers = max(int(workers), 1)
    balanced = total / workers
    return greedy_makespan(durations, workers) / max(balanced, 1e-30)
