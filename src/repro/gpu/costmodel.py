"""The GPU execution model: algorithm statistics -> estimated kernel time.

This module is the substitution documented in DESIGN.md for the paper's
physical RTX 3060/3090 testbed.  Every SpGEMM implementation in this
repository reports *what it did* — per-tile or per-row work arrays, bytes
it must move, buffers it allocated.  The cost model turns that into an
estimated runtime on a :class:`~repro.gpu.device.DeviceModel` with a
latency-aware roofline per kernel:

``kernel time = max(compute, memory) + launch overhead``

* **compute** — per-warp-task cycle counts are list-scheduled onto the
  device's issue slots (:func:`~repro.gpu.scheduler.greedy_makespan`), so
  a handful of giant tasks produce exactly the load imbalance the paper's
  §2.3 describes;
* **memory** — effective bytes moved divided by DRAM bandwidth.  The
  per-product effective-byte constants below are *calibrated* so that the
  fleet of methods lands near the paper's mean throughputs on the RTX 3090
  (Tile 54.6, spECK 46.9, NSPARSE 37.7, cuSPARSE 30.8, bhSPARSE 11.5
  GFlops); everything structure-dependent — imbalance, per-tile/per-row
  overheads, global-memory spills, two-pass duplication, dense-tile waste,
  allocation volume — comes from the measured statistics of the actual
  run, and it is those terms that produce the *shapes* of the figures.
* **allocation** — total allocated bytes and allocation count through the
  device's allocation-cost model (Figures 9/10's ``malloc`` share).

Out-of-memory is reported when the run's peak logical allocation exceeds
the device DRAM — this is how the paper's "method fails on matrix X"
entries reproduce (use ``DeviceModel.scaled_memory`` to match a scaled
workload suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import SpGEMMResult
from repro.gpu.device import DeviceModel
from repro.gpu.scheduler import greedy_makespan
from repro.obs.context import current_obs

__all__ = ["KernelEstimate", "GPUEstimate", "estimate_run", "estimate_family", "COST"]


# ----------------------------------------------------------------------
# Calibrated cost constants (see module docstring for methodology).
# ----------------------------------------------------------------------
COST: Dict[str, float] = {
    # --- TileSpGEMM ---------------------------------------------------
    "tile.step1_cycles_per_op": 8.0,       # tile-level symbolic multiply op
    "tile.step2_overhead_cycles": 90.0,    # per-C-tile warp setup + loads
    "tile.step2_cycles_per_intersect": 4.0,
    "tile.step2_cycles_per_symop": 2.0,    # mask load + AtomicOr, per lane-op
    "tile.step3_overhead_cycles": 110.0,
    "tile.step3_cycles_sparse": 9.0,       # rank lookup + FMA + shared atomic
    "tile.step3_cycles_dense": 5.0,        # direct index + FMA + shared atomic
    "tile.step3_dense_init_cycles": 128.0,  # clear, then mask-compact, the 256-slot
                                           # scratch tile (why the dense
                                           # accumulator loses on sparse tiles)
    "tile.bytes_per_product": 20.0,        # effective DRAM bytes per product
    "tile.bytes_per_pair": 64.0,           # tile metadata + masks per pair
    "tile.bytes_per_cnnz": 12.0,           # write C (packed idx + value)
    # --- row-row common ----------------------------------------------
    "row.overhead_cycles": 80.0,           # per-row task setup
    # --- cuSPARSE-class dense-row SPA ----------------------------------
    "spa.cycles_per_product": 14.0,        # dense-row random write + FMA
    "spa.bytes_per_product": 40.0,
    "spa.max_warps_per_row": 16.0,
    # --- bhSPARSE ESC ---------------------------------------------------
    "esc.cycles_per_product": 10.0,
    "esc.bytes_per_product": 130.0,        # expand + radix-sort passes + compress
    "esc.sort_cycles_per_key": 6.0,
    "esc.max_warps_per_row": 4.0,          # bin kernels are warp/block per row
    # --- NSPARSE hash ---------------------------------------------------
    "hash.cycles_per_insert": 10.0,        # hash + probe + shared atomic
    "hash.bytes_per_product": 16.0,        # one pass of B-row streaming
    "hash.bytes_per_duplicate": 0.30,      # atomic contention: traffic grows with
                                           # the duplication (compression) ratio
    "hash.global_latency_cycles": 14.0,    # extra per-insert for global tables
    "hash.global_bytes_per_insert": 40.0,  # uncoalesced DRAM atomic RMW traffic
                                           # for rows whose table spills to
                                           # global memory (two passes pay twice)
    "hash.max_warps_per_row": 8.0,
    # --- spECK ----------------------------------------------------------
    "speck.cycles_per_insert": 8.0,
    "speck.bytes_per_product": 24.0,
    "speck.bytes_per_duplicate": 0.35,     # same contention effect as NSPARSE;
                                           # spECK's own paper notes degradation
                                           # at high density / duplication
    "speck.global_latency_cycles": 10.0,
    "speck.global_bytes_per_insert": 64.0, # DRAM atomic RMW traffic of the
                                           # global-table fallback for rows
                                           # whose hash table outgrows shared
                                           # memory — the dominant cost of the
                                           # paper's high-density cases
    "speck.max_warps_per_row": 16.0,       # finer hierarchical balancing
    "speck.analysis_cycles_per_row": 24.0,
    "tsparse.malloc_multiplier": 14.0,     # repeated dense-buffer resizing over
                                           # unified memory: the paper's Figure 14
                                           # shows allocation dominating tSparse
    # --- RMerge -----------------------------------------------------------
    "rmerge.cycles_per_element": 6.0,      # compare + select + add per merge slot
    "rmerge.bytes_per_element": 16.0,      # ping-pong buffer read + write
    "rmerge.max_warps_per_row": 8.0,
    # --- tSparse ----------------------------------------------------------
    "tsparse.bytes_per_pair": 3000.0,      # dense half-tile gather/scatter is
                                           # uncoalesced: effective traffic is ~3x
                                           # the raw two-tiles-plus-result bytes
    "tsparse.tc_efficiency": 0.35,         # wmma pipelines stream well once
                                           # fragments are resident
                                           # (tSparse is conversion/launch bound;
                                           # calibrated to the paper's near-parity
                                           # on fully dense FEM tiles)
    "tsparse.pair_overhead_cycles": 200.0,
    # --- generic --------------------------------------------------------
    "bytes_per_cnnz": 12.0,                # CSR C write (index + value)
}


@dataclass
class KernelEstimate:
    """Roofline estimate of one kernel."""

    name: str
    compute_s: float
    memory_s: float
    launch_s: float
    #: Per-warp-task cycle counts the compute roof was scheduled from;
    #: kept so the observability layer can replay the schedule onto
    #: virtual SM/slot tracks (``repro.obs.gputrace.emit_gpu_timeline``).
    task_cycles: Optional[np.ndarray] = None

    @property
    def seconds(self) -> float:
        """Kernel wall time: bound by the slower roof, plus launch."""
        return max(self.compute_s, self.memory_s) + self.launch_s

    @property
    def bound(self) -> str:
        """Which roof binds: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass
class GPUEstimate:
    """Estimated execution of one SpGEMM run on one device."""

    method: str
    device: DeviceModel
    kernels: List[KernelEstimate] = field(default_factory=list)
    malloc_s: float = 0.0
    oom: bool = False
    flops: int = 0

    @property
    def seconds(self) -> float:
        """Total estimated runtime (inf when out of memory)."""
        if self.oom:
            return float("inf")
        return sum(k.seconds for k in self.kernels) + self.malloc_s

    @property
    def gflops(self) -> float:
        """Estimated throughput; 0.0 signals failure (paper's convention)."""
        s = self.seconds
        if not np.isfinite(s) or s <= 0:
            return 0.0
        return self.flops / s / 1e9

    def breakdown(self) -> Dict[str, float]:
        """Seconds per kernel plus the allocation share."""
        out = {k.name: k.seconds for k in self.kernels}
        out["malloc"] = self.malloc_s
        return out


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _compute_seconds(task_cycles: np.ndarray, device: DeviceModel) -> float:
    """List-schedule warp-task cycle counts onto the device's issue slots."""
    return greedy_makespan(task_cycles, device.issue_slots) / device.clock_hz


def _kernel(
    name: str,
    device: DeviceModel,
    task_cycles: np.ndarray,
    nbytes: float,
) -> KernelEstimate:
    return KernelEstimate(
        name=name,
        compute_s=_compute_seconds(task_cycles, device),
        memory_s=device.seconds_for_bytes(nbytes),
        launch_s=device.kernel_launch_us * 1e-6,
        task_cycles=np.asarray(task_cycles, dtype=np.float64),
    )


def _malloc_seconds(result: SpGEMMResult, device: DeviceModel) -> float:
    allocs = [e for e in result.alloc.events if e.kind == "alloc"]
    total = sum(e.nbytes for e in allocs)
    return device.malloc_seconds(total, num_allocs=len(allocs))


def _row_tasks(
    row_products: np.ndarray,
    cycles_per_product: float,
    max_warps_per_row: float,
    device: DeviceModel,
    extra_cycles: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row warp-task durations for a row-parallel kernel.

    Heavy rows get up to ``max_warps_per_row`` cooperating warps (how each
    library splits long rows), which divides their serial span.
    """
    w = device.warp_width
    products = np.asarray(row_products, dtype=np.float64)
    warps = np.clip(np.ceil(products / (8.0 * w)), 1.0, max_warps_per_row)
    cycles = products * cycles_per_product / (w * warps)
    if extra_cycles is not None:
        cycles = cycles + extra_cycles
    return cycles + COST["row.overhead_cycles"]


# ----------------------------------------------------------------------
# Per-method estimators
# ----------------------------------------------------------------------


def _estimate_tilespgemm(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)

    # Step 1: tile-level symbolic SpGEMM (paper: <5 % of runtime).
    step1_ops = float(s.get("tile_flops_step1", 0))
    # The tile-level product parallelises over tile rows; spread its work
    # across the device (it is tiny relative to steps 2/3 — paper: <5 %).
    step1_work = step1_ops * COST["tile.step1_cycles_per_op"] / device.warp_width
    step1_cycles = np.full(device.issue_slots, step1_work / device.issue_slots)
    step1_bytes = (float(s.get("num_tiles_a", 0)) + float(s.get("num_tiles_b", 0))) * 8.0
    est.kernels.append(_kernel("step1", device, step1_cycles, step1_bytes))

    pairs_per_tile = np.asarray(s.get("pairs_per_tile", np.zeros(0)), dtype=np.float64)
    len_a = np.asarray(s.get("intersect_len_a", np.zeros(0)), dtype=np.float64)
    len_b = np.asarray(s.get("intersect_len_b", np.zeros(0)), dtype=np.float64)
    products_per_tile = np.asarray(s.get("products_per_tile", np.zeros(0)), dtype=np.float64)
    tile_nnz = np.asarray(s.get("tile_nnz_counts", np.zeros(0)), dtype=np.float64)
    num_pairs = float(pairs_per_tile.sum())
    nnz_c = float(s.get("nnz_c", 0))

    # Step 2: one warp per candidate C tile — intersection + mask ORs.
    from repro.core.intersect import binary_search_cost

    if pairs_per_tile.size:
        sym_ops_per_tile = products_per_tile * 0.0
        # Symbolic ORs are one per (pair, A-tile nonzero); approximate the
        # per-tile share from the pair distribution.
        total_sym = float(s.get("symbolic_ops", 0))
        if num_pairs > 0:
            sym_ops_per_tile = pairs_per_tile * (total_sym / num_pairs)
        step2_cycles = (
            COST["tile.step2_overhead_cycles"]
            + binary_search_cost(len_a, len_b) * COST["tile.step2_cycles_per_intersect"]
            + np.ceil(sym_ops_per_tile / device.warp_width)
            * COST["tile.step2_cycles_per_symop"]
        )
    else:
        step2_cycles = np.zeros(0)
    step2_bytes = num_pairs * COST["tile.bytes_per_pair"]
    est.kernels.append(_kernel("step2", device, step2_cycles, step2_bytes))

    # Step 3: one warp per candidate C tile — numeric accumulation.
    if products_per_tile.size:
        use_dense = s.get("tile_use_dense")
        if use_dense is not None and np.asarray(use_dense).size == products_per_tile.size:
            dense = np.asarray(use_dense, dtype=bool)
        else:
            from repro.core.step3 import default_tnnz

            tnnz = float(default_tnnz(int(s.get("tile_size", 16))))
            dense = tile_nnz > tnnz if tile_nnz.size == products_per_tile.size else np.zeros(
                products_per_tile.size, dtype=bool
            )
        cyc_pp = np.where(
            dense, COST["tile.step3_cycles_dense"], COST["tile.step3_cycles_sparse"]
        )
        step3_cycles = (
            COST["tile.step3_overhead_cycles"]
            + dense * COST["tile.step3_dense_init_cycles"]
            + products_per_tile * cyc_pp / device.warp_width
        )
    else:
        step3_cycles = np.zeros(0)
    step3_bytes = (
        float(s.get("num_products", 0)) * COST["tile.bytes_per_product"]
        + nnz_c * COST["tile.bytes_per_cnnz"]
    )
    est.kernels.append(_kernel("step3", device, step3_cycles, step3_bytes))

    # Chunked re-execution (repro.runtime.chunked) launches the three step
    # kernels once per batch; the compute/memory work is unchanged but the
    # extra launches are real overhead the estimate must charge.
    batches = int(s.get("batches", 1))
    if batches > 1:
        est.kernels.append(
            KernelEstimate(
                "relaunch", 0.0, 0.0, 3 * (batches - 1) * device.kernel_launch_us * 1e-6
            )
        )

    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_spa(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    ub = np.asarray(s.get("row_upper_bounds", np.zeros(0)), dtype=np.float64)
    cycles = _row_tasks(ub, COST["spa.cycles_per_product"], COST["spa.max_warps_per_row"], device)
    nbytes = (
        float(s.get("num_products", 0)) * COST["spa.bytes_per_product"]
        + float(s.get("nnz_c", 0)) * COST["bytes_per_cnnz"]
    )
    est.kernels.append(_kernel("numeric", device, cycles, nbytes))
    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_esc(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    ub = np.asarray(s.get("row_upper_bounds", np.zeros(0)), dtype=np.float64)
    products = float(s.get("num_products", 0))

    # Analysis kernel: one pass over the rows.
    est.kernels.append(
        _kernel("analysis", device, np.asarray([ub.size * 4.0 / device.warp_width]), ub.size * 8.0)
    )
    # Expansion kernel: write every product.
    exp_cycles = _row_tasks(ub, COST["esc.cycles_per_product"], COST["esc.max_warps_per_row"], device)
    est.kernels.append(_kernel("expansion", device, exp_cycles, products * 12.0))
    # Global sort + compression: the bandwidth hog.
    # Radix/merge sort work: products * log(products) key operations spread
    # perfectly across the device (sorts parallelise well), expressed as a
    # single balanced task so only bandwidth and total work matter.
    sort_work = (
        products
        * COST["esc.sort_cycles_per_key"]
        * max(np.log2(max(products, 2.0)) / 16.0, 1.0)
        / device.warp_width
    )
    sort_cycles = np.full(device.issue_slots, sort_work / device.issue_slots)
    sort_bytes = products * COST["esc.bytes_per_product"]
    est.kernels.append(_kernel("sort_compress", device, sort_cycles, sort_bytes))

    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_hash(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    ub = np.asarray(s.get("row_upper_bounds", np.zeros(0)), dtype=np.float64)
    probes = np.asarray(
        s.get("expected_probes_per_insert", np.ones_like(ub)), dtype=np.float64
    )
    table = np.asarray(s.get("hash_table_sizes", np.zeros_like(ub)), dtype=np.float64)
    from repro.baselines.hash_spgemm import SHARED_TABLE_ENTRIES

    spill = table > SHARED_TABLE_ENTRIES
    per_insert = COST["hash.cycles_per_insert"] * probes + np.where(
        spill, COST["hash.global_latency_cycles"], 0.0
    )
    spill_products = float(ub[spill].sum())
    # Duplicate inserts land on already-occupied table entries and
    # serialise their atomics; effective traffic grows with the
    # duplication (compression) ratio products / nnz(C).
    products = float(s.get("num_products", 0))
    nnz_c = float(s.get("nnz_c", 0))
    dup_ratio = min(products / max(nnz_c, 1.0), 150.0)
    bytes_per_product = COST["hash.bytes_per_product"] + COST["hash.bytes_per_duplicate"] * dup_ratio
    # Two full passes: symbolic then numeric.
    for phase in ("symbolic", "numeric"):
        cycles = _row_tasks(
            ub, 1.0, COST["hash.max_warps_per_row"], device
        )  # base traversal
        cycles = cycles + ub * per_insert / device.warp_width / np.maximum(
            np.clip(np.ceil(ub / (8.0 * device.warp_width)), 1.0, COST["hash.max_warps_per_row"]), 1.0
        )
        nbytes = products * bytes_per_product
        nbytes += spill_products * COST["hash.global_bytes_per_insert"]
        if phase == "numeric":
            nbytes += nnz_c * COST["bytes_per_cnnz"]
        est.kernels.append(_kernel(phase, device, cycles, nbytes))
    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_speck(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    ub = np.asarray(s.get("row_upper_bounds", np.zeros(0)), dtype=np.float64)
    from repro.baselines.speck import SHARED_TABLE_ENTRIES

    est.kernels.append(
        _kernel(
            "analysis",
            device,
            np.asarray([ub.size * COST["speck.analysis_cycles_per_row"] / device.warp_width]),
            ub.size * 8.0,
        )
    )
    spill = 2 * ub > SHARED_TABLE_ENTRIES  # table is sized 2x the upper bound
    spill_extra = np.where(spill, COST["speck.global_latency_cycles"], 0.0)
    cycles = _row_tasks(
        ub,
        COST["speck.cycles_per_insert"],
        COST["speck.max_warps_per_row"],
        device,
        extra_cycles=ub * spill_extra / device.warp_width,
    )
    products = float(s.get("num_products", 0))
    nnz_c = float(s.get("nnz_c", 0))
    dup_ratio = min(products / max(nnz_c, 1.0), 150.0)
    nbytes = (
        products
        * (COST["speck.bytes_per_product"] + COST["speck.bytes_per_duplicate"] * dup_ratio)
        + float(ub[spill].sum()) * COST["speck.global_bytes_per_insert"]
        + nnz_c * COST["bytes_per_cnnz"]
    )
    est.kernels.append(_kernel("numeric", device, cycles, nbytes))
    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_rmerge(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    ub = np.asarray(s.get("row_upper_bounds", np.zeros(0)), dtype=np.float64)
    rounds = float(s.get("merge_rounds", 1))
    cycles = _row_tasks(
        ub * max(rounds, 1.0),
        COST["rmerge.cycles_per_element"],
        COST["rmerge.max_warps_per_row"],
        device,
    )
    nbytes = (
        float(s.get("merge_elements", 0)) * COST["rmerge.bytes_per_element"]
        + float(s.get("nnz_c", 0)) * COST["bytes_per_cnnz"]
    )
    est.kernels.append(_kernel("numeric", device, cycles, nbytes))
    est.malloc_s = _malloc_seconds(result, device)
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


def _estimate_tsparse(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    s = result.stats
    est = GPUEstimate(method=result.method, device=device, flops=result.flops)
    num_pairs = float(s.get("num_pairs", 0))
    T = float(s.get("tile_size", 16))
    macs = float(s.get("dense_macs", 0))
    # Tensor-core kernel: dense MACs at the achieved fraction of peak.
    tc_rate = device.tensor_tflops_fp16 * 1e12 * COST["tsparse.tc_efficiency"]
    compute_s = 2.0 * macs / max(tc_rate, 1.0)
    compute_s += (
        num_pairs * COST["tsparse.pair_overhead_cycles"] / device.issue_slots / device.clock_hz
    )
    memory_s = device.seconds_for_bytes(
        num_pairs * COST["tsparse.bytes_per_pair"] * (T / 16.0) ** 2
        + float(s.get("nnz_c", 0)) * COST["bytes_per_cnnz"]
    )
    est.kernels.append(
        KernelEstimate("dense_tile_gemm", compute_s, memory_s, device.kernel_launch_us * 1e-6)
    )
    # tSparse's allocation behaviour (paper Figure 14): the dense result
    # buffer is resized repeatedly as candidate tiles appear, and the
    # buffers live in unified memory — charge one resize per chunk of
    # candidate tiles plus a migration-inflated byte cost.
    num_c_tiles = float(s.get("num_c_tiles", 0))
    total_alloc = sum(e.nbytes for e in result.alloc.events if e.kind == "alloc")
    est.malloc_s = device.malloc_seconds(
        total_alloc * COST["tsparse.malloc_multiplier"],
        num_allocs=int(num_c_tiles // 512) + 6,
    )
    est.oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    return est


_ESTIMATORS = {
    "tilespgemm": _estimate_tilespgemm,
    "cusparse_spa": _estimate_spa,
    "bhsparse_esc": _estimate_esc,
    "nsparse_hash": _estimate_hash,
    "speck": _estimate_speck,
    "tsparse": _estimate_tsparse,
    "rmerge": _estimate_rmerge,
    "gustavson": _estimate_spa,  # the reference shares the SPA profile
    "heap_merge": _estimate_spa,
}


def estimate_family(method: str) -> str:
    """The ``_ESTIMATORS`` key pricing ``method``.

    The calibration layer stratifies prediction error by this label: the
    sharded parallel variants share the ``tilespgemm`` profile, and the
    reference methods share the SPA profile, so errors aggregate where
    the *model* aggregates.
    """
    if method in _ESTIMATORS:
        return method
    if method.startswith("tilespgemm"):
        return "tilespgemm"
    raise KeyError(
        f"no cost model for method {method!r}; known: {sorted(_ESTIMATORS)}"
    )


def estimate_run(result: SpGEMMResult, device: DeviceModel) -> GPUEstimate:
    """Estimate one run's execution on ``device``.

    Parameters
    ----------
    result:
        Any :class:`~repro.baselines.base.SpGEMMResult` (TileSpGEMM runs
        go through the registry adapter so they share this type).
    device:
        Target device model.

    When the ambient observability context carries a live
    :class:`~repro.obs.profile.WorkloadProfiler`, every estimate also
    deposits a calibration sample there — the prediction joined with the
    run's measured phase seconds — which is what ``repro obs calibrate``
    turns into per-family prediction-error reports.
    """
    method = result.method
    family = estimate_family(method)
    # See estimate_family: tilespgemm_par* execute the same kernels as
    # the serial engine and their merged stats equal one serial run's
    # totals, so they share its cost profile.
    estimate = _ESTIMATORS[family](result, device)
    profiler = current_obs().profile
    if profiler.enabled:
        profiler.record_estimate(
            estimate, family=family, timer=result.timer, stats=result.stats
        )
    return estimate
