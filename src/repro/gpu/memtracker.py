"""Memory-over-time curves for the Figure 9 reproduction.

The paper's Figure 9 plots each method's *live device memory* against its
completion time.  Every algorithm here already keeps an event-ordered
allocation ledger (:class:`~repro.util.alloc.AllocationTracker`); this
module lays those events out on the estimated GPU timeline so a method's
curve has the right duration (from the cost model) and the right heights
(from the ledger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.base import SpGEMMResult
from repro.gpu.costmodel import GPUEstimate, estimate_run
from repro.gpu.device import DeviceModel

__all__ = ["MemoryCurve", "memory_curve"]


@dataclass
class MemoryCurve:
    """A method's memory-versus-time footprint on a modelled device."""

    method: str
    points: List[Tuple[float, int]]  #: (seconds, live bytes) steps
    peak_bytes: int
    total_seconds: float
    oom: bool

    @property
    def peak_mb(self) -> float:
        """Peak footprint in megabytes (the paper's Figure 9 y-axis)."""
        return self.peak_bytes / 1e6

    @property
    def total_ms(self) -> float:
        """Completion time in milliseconds (the Figure 9 x-axis)."""
        return self.total_seconds * 1e3


def memory_curve(result: SpGEMMResult, device: DeviceModel) -> MemoryCurve:
    """Combine a run's allocation ledger with its estimated timeline.

    Allocation events are distributed across the estimated runtime in
    ledger order, phase by phase: events tagged with a phase receive that
    phase's share of the estimated time (matching how the paper's probe
    samples the allocator between kernels).
    """
    est: GPUEstimate = estimate_run(result, device)
    # OOM is a property of the ledger against the device's Table-1 DRAM
    # capacity — derived here directly so the curve is right even for
    # methods whose estimator is a stand-in.
    oom = result.alloc.peak_bytes > device.dram_capacity_bytes
    seconds = est.seconds if not oom else float("nan")
    total = seconds if seconds == seconds else result.timer.total  # NaN-safe
    points = result.alloc.timeline(total_seconds=total)
    return MemoryCurve(
        method=result.method,
        points=points,
        peak_bytes=result.alloc.peak_bytes,
        total_seconds=total,
        oom=oom,
    )
