"""The benchmark history store and the regression gate.

Runs accumulate under ``benchmarks/history/`` as one JSON document per
run (named ``<suite>-<created>-<label>.json``), giving the repository a
performance trajectory: every PR's ``repro bench run`` appends an entry,
and ``repro bench gate`` diffs the candidate against a baseline —
``benchmarks/history/seed.json`` by default, the checked-in first entry —
failing with :class:`~repro.errors.BenchRegressionError` (CLI exit code
9) on statistically significant regressions beyond the noise threshold.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.bench_compare import (
    DEFAULT_ALPHA,
    DEFAULT_NOISE_THRESHOLD,
    ComparisonReport,
    compare_documents,
)
from repro.bench import schema
from repro.errors import BenchRegressionError

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_BASELINE",
    "run_filename",
    "append_run",
    "history_paths",
    "latest_run",
    "load_history",
    "gate_documents",
]

#: Where the repository keeps its run trajectory (relative to the cwd of
#: a checkout; the CLI takes ``--history-dir`` for anything else).
DEFAULT_HISTORY_DIR = Path("benchmarks") / "history"

#: The checked-in first history entry every gate defaults to.
DEFAULT_BASELINE = DEFAULT_HISTORY_DIR / "seed.json"


def run_filename(doc: Dict[str, Any]) -> str:
    """Deterministic history filename for one document."""
    meta = doc["meta"]
    label = "".join(c if (c.isalnum() or c in "-_") else "-" for c in meta["label"])
    return f"{meta['suite']}-{int(meta['created_unix'])}-{label}.json"


def append_run(doc: Dict[str, Any], history_dir=DEFAULT_HISTORY_DIR) -> Path:
    """Validate ``doc`` and append it to the history directory."""
    schema.validate_document(doc)
    directory = Path(history_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / run_filename(doc)
    schema.write_document(doc, path)
    return path


def history_paths(history_dir=DEFAULT_HISTORY_DIR) -> List[Path]:
    """Every history entry, oldest first (by recorded creation time)."""
    directory = Path(history_dir)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        try:
            doc = schema.load_document(path)
        except Exception:
            continue  # a foreign file in the directory is not history
        entries.append((doc["meta"]["created_unix"], str(path)))
    entries.sort()
    return [Path(p) for _, p in entries]


def latest_run(
    history_dir=DEFAULT_HISTORY_DIR, exclude: Optional[Path] = None
) -> Optional[Path]:
    """The newest history entry, optionally skipping ``exclude`` (so the
    gate's default candidate is never the baseline itself)."""
    skip = Path(exclude).resolve() if exclude is not None else None
    for path in reversed(history_paths(history_dir)):
        if skip is not None and path.resolve() == skip:
            continue
        return path
    return None


def load_history(history_dir=DEFAULT_HISTORY_DIR) -> List[Dict[str, Any]]:
    """All history documents, oldest first."""
    return [schema.load_document(p) for p in history_paths(history_dir)]


def gate_documents(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> ComparisonReport:
    """Compare candidate against baseline; raise on significant regressions.

    Returns the full :class:`~repro.analysis.bench_compare.ComparisonReport`
    when the gate passes; raises :class:`~repro.errors.BenchRegressionError`
    (carrying the report on ``exc.report`` and the offending deltas on
    ``exc.regressions``) when any series regressed significantly.
    """
    report = compare_documents(
        baseline, candidate, noise_threshold=noise_threshold, alpha=alpha
    )
    if report.regressions:
        exc = BenchRegressionError(report.regressions)
        exc.report = report
        raise exc
    return report
