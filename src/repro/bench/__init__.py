"""Performance observability: the machine-readable benchmark tier.

The paper's evaluation is a performance argument; this package makes the
reproduction's own performance a first-class, diffable artifact:

* :mod:`repro.bench.schema` — the schema-versioned JSON result document
  every benchmark run emits (samples, GFlops, counters, cost-model
  estimates, environment fingerprint);
* :mod:`repro.bench.runner` — :class:`~repro.bench.runner.BenchRunner`,
  executing named suites with warmup/repeat control and deterministic
  seeding;
* :mod:`repro.bench.history` — the run trajectory under
  ``benchmarks/history/`` and the regression gate;
* :mod:`repro.bench.roofline` — achieved-vs-peak analytics joining the
  documents with :mod:`repro.gpu`'s device models;
* :mod:`repro.bench.cli` — the ``repro bench run|compare|gate|report``
  subcommands.

The statistical comparison engine itself lives in
:mod:`repro.analysis.bench_compare` next to the other analysis tools.
See ``docs/BENCHMARKING.md`` for the schema reference and workflow.
"""

from repro.bench.history import (
    DEFAULT_BASELINE,
    DEFAULT_HISTORY_DIR,
    append_run,
    gate_documents,
    history_paths,
    latest_run,
    load_history,
)
from repro.bench.roofline import RooflinePoint, render_roofline, roofline_points
from repro.bench.runner import SUITES, BenchConfig, BenchRunner, available_suites
from repro.bench.schema import (
    SCHEMA_VERSION,
    environment_fingerprint,
    load_document,
    make_series,
    new_document,
    series_key,
    validate_document,
    write_document,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchRunner",
    "SUITES",
    "available_suites",
    "series_key",
    "environment_fingerprint",
    "new_document",
    "make_series",
    "validate_document",
    "write_document",
    "load_document",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_BASELINE",
    "append_run",
    "history_paths",
    "latest_run",
    "load_history",
    "gate_documents",
    "RooflinePoint",
    "roofline_points",
    "render_roofline",
]
