"""The canonical machine-readable benchmark result document.

Every benchmark execution — the ``repro bench run`` CLI, the pytest bench
modules, the CI gate — reports through one schema-versioned JSON shape so
that any two runs, from any machine and any PR, can be diffed by
:mod:`repro.analysis.bench_compare`.  A document is a plain dict::

    {
      "schema": "repro.bench/1",
      "meta": {
        "label": "seed", "suite": "ext",
        "created_unix": 1754..., "warmup": 1, "repeats": 5, "seed": 0
      },
      "environment": { ... fingerprint ... },
      "series": [
        {
          "key": "pdb1HYS|tilespgemm|aa",
          "matrix": "pdb1HYS", "method": "tilespgemm", "op": "aa",
          "n": 3600, "nnz": 218670, "nnz_c": ..., "flops": ...,
          "wall_seconds": [0.98, 0.97, ...],   # one entry per repeat
          "gflops": 0.061,                     # flops / median wall time
          "phases": {"step1": ..., "step2": ..., "step3": ..., "malloc": ...},
          "counters": {"atomic_add_ops_total": ...},   # MetricsRegistry
          "estimates": {                       # cost model, per device
            "rtx3090": {"seconds": ..., "gflops": ..., "oom": false,
                        "malloc_s": ...,
                        "kernels": {"step1": {"seconds": ..., "compute_s":
                                    ..., "memory_s": ..., "launch_s": ...,
                                    "bound": "memory"}, ...}},
            ...
          },
          "extra": { ... free-form, bench-module specific ... }
        }, ...
      ]
    }

``wall_seconds`` may be empty for series whose value is model-derived
(e.g. the Figure 6 GFlops sweep); the comparison engine then falls back
to the scalar throughput.  Everything optional defaults sanely, and
:func:`validate_document` pins the shape the rest of the tooling relies
on, raising :class:`~repro.errors.InvalidInputError` naming the first
offending path (so CI failures point at the actual field).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from repro.errors import InvalidInputError

__all__ = [
    "SCHEMA_VERSION",
    "series_key",
    "environment_fingerprint",
    "new_document",
    "make_series",
    "index_series",
    "validate_document",
    "write_document",
    "load_document",
]

#: Version tag of the document shape; bump on incompatible changes.
SCHEMA_VERSION = "repro.bench/1"

#: Sample lists beyond this length are rejected (corrupt documents).
_MAX_SAMPLES = 100_000


def series_key(matrix: str, method: str, op: str) -> str:
    """Canonical identity of one measured series: ``matrix|method|op``."""
    return f"{matrix}|{method}|{op}"


def environment_fingerprint() -> Dict[str, str]:
    """Where a document was produced (joined into every comparison report).

    Deliberately coarse — interpreter, platform, library versions — so two
    fingerprints answer "are these runs even comparable on absolute time?"
    without leaking anything host-specific beyond the platform triple.
    """
    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }


def new_document(
    label: str,
    suite: str,
    warmup: int,
    repeats: int,
    seed: int,
    created_unix: Optional[float] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """An empty document with meta and environment filled in.

    ``backend`` records the kernel backend the suite executed under
    (:mod:`repro.backend`); ``None`` omits the key, keeping documents
    from before the backend seam byte-compatible.
    """
    meta: Dict[str, Any] = {
        "label": str(label),
        "suite": str(suite),
        "created_unix": float(time.time() if created_unix is None else created_unix),
        "warmup": int(warmup),
        "repeats": int(repeats),
        "seed": int(seed),
    }
    if backend is not None:
        meta["backend"] = str(backend)
    return {
        "schema": SCHEMA_VERSION,
        "meta": meta,
        "environment": environment_fingerprint(),
        "series": [],
    }


def make_series(
    matrix: str,
    method: str,
    op: str,
    wall_seconds: Optional[List[float]] = None,
    gflops: Optional[float] = None,
    flops: int = 0,
    n: int = 0,
    nnz: int = 0,
    nnz_c: int = 0,
    phases: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, float]] = None,
    estimates: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One series entry (see the module docstring for the shape).

    ``profile`` embeds this series' ``repro.profile/1`` workload-profile
    artifact (phases, tile-row bands, calibration samples) so history
    snapshots carry the attribution data ``bench compare --attribute``
    blames regressions with.
    """
    out: Dict[str, Any] = {
        "key": series_key(matrix, method, op),
        "matrix": str(matrix),
        "method": str(method),
        "op": str(op),
        "n": int(n),
        "nnz": int(nnz),
        "nnz_c": int(nnz_c),
        "flops": int(flops),
        "wall_seconds": [float(s) for s in (wall_seconds or [])],
    }
    if gflops is not None:
        out["gflops"] = float(gflops)
    if phases:
        out["phases"] = {str(k): float(v) for k, v in phases.items()}
    if counters:
        out["counters"] = dict(counters)
    if estimates:
        out["estimates"] = estimates
    if extra:
        out["extra"] = extra
    if profile:
        out["profile"] = profile
    return out


def index_series(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Map ``series key -> series`` for one document."""
    return {s["key"]: s for s in doc["series"]}


def _fail(path: str, message: str) -> None:
    raise InvalidInputError(f"invalid bench document at {path}: {message}")


def _check_number(value: Any, path: str, allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, f"expected a number, got {value!r}")


def validate_document(doc: Any) -> Dict[str, Any]:
    """Check ``doc`` against the schema; returns it unchanged.

    Raises :class:`~repro.errors.InvalidInputError` naming the first
    offending path.  Only the fields the tooling consumes are pinned;
    ``extra`` stays free-form by design.
    """
    if not isinstance(doc, dict):
        _fail("$", "document must be a JSON object")
    if doc.get("schema") != SCHEMA_VERSION:
        _fail("$.schema", f"expected {SCHEMA_VERSION!r}, got {doc.get('schema')!r}")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        _fail("$.meta", "missing meta object")
    for field in ("label", "suite"):
        if not isinstance(meta.get(field), str):
            _fail(f"$.meta.{field}", "expected a string")
    for field in ("created_unix", "warmup", "repeats", "seed"):
        _check_number(meta.get(field), f"$.meta.{field}")
    env = doc.get("environment")
    if not isinstance(env, dict):
        _fail("$.environment", "missing environment fingerprint")
    series = doc.get("series")
    if not isinstance(series, list):
        _fail("$.series", "expected a list")
    seen = set()
    for i, s in enumerate(series):
        at = f"$.series[{i}]"
        if not isinstance(s, dict):
            _fail(at, "expected an object")
        for field in ("key", "matrix", "method", "op"):
            if not isinstance(s.get(field), str) or not s[field]:
                _fail(f"{at}.{field}", "expected a non-empty string")
        if s["key"] != series_key(s["matrix"], s["method"], s["op"]):
            _fail(f"{at}.key", f"key {s['key']!r} does not match matrix/method/op")
        if s["key"] in seen:
            _fail(f"{at}.key", f"duplicate series key {s['key']!r}")
        seen.add(s["key"])
        for field in ("n", "nnz", "nnz_c", "flops"):
            _check_number(s.get(field, 0), f"{at}.{field}")
        samples = s.get("wall_seconds", [])
        if not isinstance(samples, list) or len(samples) > _MAX_SAMPLES:
            _fail(f"{at}.wall_seconds", "expected a (bounded) list of seconds")
        for j, v in enumerate(samples):
            _check_number(v, f"{at}.wall_seconds[{j}]")
            if v < 0:
                _fail(f"{at}.wall_seconds[{j}]", f"negative duration {v!r}")
        _check_number(s.get("gflops"), f"{at}.gflops", allow_none=True)
        for mapping in ("phases", "counters"):
            got = s.get(mapping)
            if got is None:
                continue
            if not isinstance(got, dict):
                _fail(f"{at}.{mapping}", "expected an object")
            for k, v in got.items():
                _check_number(v, f"{at}.{mapping}[{k!r}]")
        est = s.get("estimates")
        if est is not None:
            if not isinstance(est, dict):
                _fail(f"{at}.estimates", "expected an object keyed by device")
            for dev, e in est.items():
                if not isinstance(e, dict):
                    _fail(f"{at}.estimates[{dev!r}]", "expected an object")
                for field in ("seconds", "gflops"):
                    _check_number(e.get(field), f"{at}.estimates[{dev!r}].{field}")
        embedded = s.get("profile")
        if embedded is not None:
            from repro.obs.profile import validate_profile

            try:
                validate_profile(embedded)
            except InvalidInputError as exc:
                _fail(f"{at}.profile", str(exc))
    return doc


def write_document(doc: Dict[str, Any], path) -> None:
    """Validate and write ``doc`` as indented JSON."""
    validate_document(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_document(path) -> Dict[str, Any]:
    """Read and validate one result document.

    Raises ``FileNotFoundError`` when the file is absent and
    :class:`~repro.errors.InvalidInputError` when the contents are not a
    valid document (including JSON syntax errors — a truncated artifact
    should fail the same way a wrong-shaped one does).
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInputError(f"bench document {path} is not valid JSON: {exc}") from exc
    return validate_document(doc)
