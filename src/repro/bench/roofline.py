"""Roofline analytics: where each run sits against its device's peaks.

The cost model (:mod:`repro.gpu.costmodel`) already prices every kernel
as ``max(compute, memory) + launch``; this module inverts that view into
the classic roofline coordinates for a whole run: arithmetic intensity
(flops per DRAM byte), achieved GFlops against the device's compute peak,
and achieved bandwidth against the DRAM peak.  Because the per-kernel
``memory_s`` in a result document is *bytes moved / peak bandwidth*, the
bytes reconstruct exactly — no second bookkeeping channel is needed.

Interpretation (see ``docs/BENCHMARKING.md``): a series whose achieved
bandwidth approaches the DRAM roof is memory-bound — making it faster
requires moving fewer bytes (the paper's argument for the tiled format);
a series far from both roofs is overhead-bound (launches, allocation,
load imbalance), which is where scheduling work pays off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.gpu import DEVICES

__all__ = ["RooflinePoint", "roofline_points", "render_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One (series, device) position on the roofline plot."""

    key: str
    device: str
    seconds: float
    flops: int
    bytes_moved: float
    achieved_gflops: float
    peak_gflops: float
    achieved_gbs: float
    peak_gbs: float
    oom: bool = False

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte of the whole run."""
        return self.flops / self.bytes_moved if self.bytes_moved > 0 else 0.0

    @property
    def ridge_intensity(self) -> float:
        """The device's ridge point: flops/byte where both roofs meet."""
        return self.peak_gflops / self.peak_gbs if self.peak_gbs > 0 else 0.0

    @property
    def bound(self) -> str:
        """Which roof limits this run at its intensity."""
        return "memory" if self.arithmetic_intensity < self.ridge_intensity else "compute"

    @property
    def compute_fraction(self) -> float:
        """Achieved GFlops as a fraction of the compute peak."""
        return self.achieved_gflops / self.peak_gflops if self.peak_gflops > 0 else 0.0

    @property
    def bandwidth_fraction(self) -> float:
        """Achieved bandwidth as a fraction of the DRAM peak."""
        return self.achieved_gbs / self.peak_gbs if self.peak_gbs > 0 else 0.0


def roofline_points(
    doc: Dict[str, Any], device: Optional[str] = None
) -> List[RooflinePoint]:
    """Roofline positions for every (series, device) estimate in ``doc``.

    ``device`` restricts the join to one device key (``"rtx3090"``).
    Series without cost-model estimates, and out-of-memory estimates, are
    skipped (an OOM run has no meaningful throughput — the paper plots
    those as failures, not points).
    """
    points: List[RooflinePoint] = []
    for series in doc["series"]:
        estimates = series.get("estimates") or {}
        for dev_key, est in sorted(estimates.items()):
            if device is not None and dev_key != device:
                continue
            model = DEVICES.get(dev_key)
            if model is None:
                continue
            seconds = float(est.get("seconds", 0.0))
            if est.get("oom") or seconds <= 0:
                points.append(
                    RooflinePoint(
                        key=series["key"],
                        device=dev_key,
                        seconds=seconds,
                        flops=int(series.get("flops", 0)),
                        bytes_moved=0.0,
                        achieved_gflops=0.0,
                        peak_gflops=model.peak_gflops_fp64,
                        achieved_gbs=0.0,
                        peak_gbs=model.dram_bw_gbs,
                        oom=bool(est.get("oom")),
                    )
                )
                continue
            # memory_s was bytes / peak_bw, so the bytes reconstruct.
            bytes_moved = sum(
                float(k.get("memory_s", 0.0)) for k in est.get("kernels", {}).values()
            ) * model.dram_bw_gbs * 1e9
            points.append(
                RooflinePoint(
                    key=series["key"],
                    device=dev_key,
                    seconds=seconds,
                    flops=int(series.get("flops", 0)),
                    bytes_moved=bytes_moved,
                    achieved_gflops=float(est.get("gflops", 0.0)),
                    peak_gflops=model.peak_gflops_fp64,
                    achieved_gbs=bytes_moved / seconds / 1e9,
                    peak_gbs=model.dram_bw_gbs,
                )
            )
    return points


def render_roofline(points: List[RooflinePoint]) -> str:
    """The roofline table behind ``repro bench report --roofline``."""
    from repro.analysis.reporting import format_table

    rows = []
    for p in points:
        if p.oom or p.seconds <= 0:
            rows.append([p.key, p.device, "-", "OOM" if p.oom else "-", "-", "-", "-"])
            continue
        rows.append(
            [
                p.key,
                p.device,
                f"{p.arithmetic_intensity:.2f}",
                f"{p.achieved_gflops:.2f}",
                f"{p.compute_fraction * 100:.1f}%",
                f"{p.achieved_gbs:.1f}",
                f"{p.bandwidth_fraction * 100:.1f}%",
            ]
        )
    return format_table(
        ["series", "device", "flops/byte", "GFlops", "% peak", "GB/s", "% BW"],
        rows,
        title="roofline position (cost model vs device peaks; ridge at "
        + ", ".join(
            f"{k}={DEVICES[k].peak_gflops_fp64 / DEVICES[k].dram_bw_gbs:.2f}"
            for k in sorted({p.device for p in points if p.device in DEVICES})
        )
        + " flops/byte)",
    )
