"""``repro bench`` — run, compare, gate and report benchmark documents.

Subcommands (dispatched from :func:`repro.cli.main` so the paper-artifact
interface stays untouched)::

    python -m repro bench run --suite ext --out BENCH_PR3.json
    python -m repro bench compare benchmarks/history/seed.json latest.json
    python -m repro bench compare --planner planner-bench.json
    python -m repro bench gate --candidate latest.json [--soft]
    python -m repro bench report latest.json --roofline
    python -m repro bench report --attribute base_trace.json cur_trace.json

Exit codes follow the :mod:`repro.errors` taxonomy: 0 on success, 2 on
usage errors, 3 on malformed documents, 4 on missing files and 9 when the
gate finds a statistically significant regression (``--soft`` downgrades
9 to a warning, for CI jobs comparing across unlike machines).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import (
    EXIT_OK,
    EXIT_USAGE,
    BenchRegressionError,
    InvalidInputError,
    exit_code_for,
)

__all__ = ["bench_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="machine-readable benchmark runner, regression gate and analytics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.analysis.bench_compare import DEFAULT_ALPHA, DEFAULT_NOISE_THRESHOLD
    from repro.bench.history import DEFAULT_BASELINE, DEFAULT_HISTORY_DIR
    from repro.bench.runner import available_suites

    suites = available_suites()
    run = sub.add_parser(
        "run",
        help="execute a suite and emit a result document",
        description="suites: "
        + "; ".join(f"{name} ({desc})" for name, desc in suites.items()),
    )
    run.add_argument("--suite", default="ext", choices=sorted(suites))
    run.add_argument("--label", default="", help="run label recorded in meta (default: suite name)")
    run.add_argument("--warmup", type=int, default=1, help="untimed executions per series")
    run.add_argument("--repeats", type=int, default=5, help="timed executions per series")
    run.add_argument("--seed", type=int, default=0, help="deterministic RNG seed")
    run.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend the suite runs under (see docs/BACKENDS.md); "
        "recorded in the document's meta (default: ambient/$REPRO_BACKEND)",
    )
    run.add_argument(
        "--max-matrices",
        type=int,
        default=None,
        help="cap the suite's matrix list (default: REPRO_BENCH_MAX_MATRICES or all)",
    )
    run.add_argument(
        "--methods", default=None, help="comma-separated method override (default: the suite's)"
    )
    run.add_argument("--out", default=None, metavar="OUT.json", help="also write the document here")
    run.add_argument(
        "--history-dir",
        default=str(DEFAULT_HISTORY_DIR),
        help="history directory to append to (default: benchmarks/history)",
    )
    run.add_argument(
        "--no-history", action="store_true", help="do not append the run to the history store"
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-series progress lines")

    compare = sub.add_parser(
        "compare",
        help="diff two result documents, or gate the planner with --planner",
    )
    compare.add_argument("baseline", help="baseline document path")
    compare.add_argument(
        "current",
        nargs="?",
        default=None,
        help="current document path (omitted with --planner)",
    )
    compare.add_argument("--threshold", type=float, default=DEFAULT_NOISE_THRESHOLD)
    compare.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    compare.add_argument("--verbose", action="store_true", help="also list unchanged series")
    compare.add_argument("--json", action="store_true", help="machine-readable verdicts on stdout")
    compare.add_argument(
        "--attribute",
        action="store_true",
        help="blame each significant regression on a pipeline phase and a "
        "tile-row band using the documents' embedded workload profiles",
    )
    compare.add_argument(
        "--planner",
        action="store_true",
        help="planner gate: compare the planned method against every "
        "static configuration within ONE document (the positional path; "
        "run the 'planner' suite first); exit 9 unless the planner's "
        "geomean speedup is >= 1.0 vs every static config with no "
        "per-matrix regression beyond the noise threshold",
    )
    compare.add_argument(
        "--planned-method",
        default="tilespgemm_planned",
        metavar="NAME",
        help="series method treated as the planner (default tilespgemm_planned)",
    )

    gate = sub.add_parser(
        "gate", help="fail (exit 9) on statistically significant regressions"
    )
    gate.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline document (default: benchmarks/history/seed.json)",
    )
    gate.add_argument(
        "--candidate",
        default=None,
        help="candidate document (default: newest history entry that is not the baseline)",
    )
    gate.add_argument("--history-dir", default=str(DEFAULT_HISTORY_DIR))
    gate.add_argument("--threshold", type=float, default=DEFAULT_NOISE_THRESHOLD)
    gate.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    gate.add_argument(
        "--soft",
        action="store_true",
        help="warn-only: report regressions but exit 0 (cross-machine CI)",
    )

    report = sub.add_parser("report", help="summarise a document; roofline and attribution views")
    report.add_argument(
        "doc", nargs="?", default=None, help="result document (default: newest history entry)"
    )
    report.add_argument("--history-dir", default=str(DEFAULT_HISTORY_DIR))
    report.add_argument("--roofline", action="store_true", help="print the roofline table")
    report.add_argument(
        "--device", default=None, help="restrict the roofline join to one device key"
    )
    report.add_argument(
        "--attribute",
        nargs=2,
        metavar=("BASE_TRACE", "CUR_TRACE"),
        default=None,
        help="per-span delta table between two Chrome trace files "
        "(repro.analysis.profiling.diff_traces)",
    )
    return parser


def _cmd_run(args) -> int:
    import json

    from repro.bench.history import append_run
    from repro.bench.runner import BenchConfig, BenchRunner
    from repro.bench.schema import write_document

    methods = tuple(m for m in args.methods.split(",") if m) if args.methods else None
    config = BenchConfig(
        suite=args.suite,
        label=args.label,
        warmup=args.warmup,
        repeats=args.repeats,
        seed=args.seed,
        max_matrices=args.max_matrices,
        methods=methods,
        backend=args.backend,
    )
    progress = None if args.quiet else lambda line: print(f"  running {line}", file=sys.stderr)
    doc = BenchRunner(config).run(progress=progress)
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        write_document(doc, args.out)
        print(f"wrote {args.out} ({len(doc['series'])} series)")
    if not args.no_history:
        path = append_run(doc, args.history_dir)
        print(f"appended history entry {path}")
    if not args.out and args.no_history:
        print(json.dumps(doc, indent=2))
    return EXIT_OK


def _cmd_compare(args) -> int:
    from repro.analysis.bench_compare import (
        attribute_regressions,
        compare_documents,
        render_attribution,
        render_comparison,
    )
    from repro.bench.schema import load_document

    if args.planner:
        return _cmd_compare_planner(args)
    if args.current is None:
        print(
            "error: compare needs two documents (or --planner with one)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    base = load_document(args.baseline)
    cur = load_document(args.current)
    report = compare_documents(
        base, cur, noise_threshold=args.threshold, alpha=args.alpha
    )
    attributions = (
        attribute_regressions(report, base, cur) if args.attribute else None
    )
    if args.json:
        import json

        payload = {
            "baseline": report.baseline_label,
            "current": report.current_label,
            "noise_threshold": report.noise_threshold,
            "alpha": report.alpha,
            "geomean_speedup": report.geomean_speedup(),
            "series": [
                {
                    "key": d.key,
                    "classification": d.classification,
                    "significant": d.significant,
                    "speedup": d.speedup,
                    "p_value": d.p_value,
                }
                for d in report.deltas
            ],
        }
        if attributions is not None:
            payload["attributions"] = attributions
        print(json.dumps(payload, indent=2))
    else:
        print(render_comparison(report, verbose=args.verbose))
        if attributions is not None:
            print()
            print(render_attribution(attributions))
    return EXIT_OK


def _cmd_compare_planner(args) -> int:
    from repro.analysis.bench_compare import (
        planner_comparison,
        render_planner_comparison,
    )
    from repro.bench.schema import load_document

    doc = load_document(args.baseline)
    try:
        report = planner_comparison(
            doc,
            planned_method=args.planned_method,
            noise_threshold=args.threshold,
            alpha=args.alpha,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        print(render_planner_comparison(report))
    if not report["passed"]:
        from types import SimpleNamespace

        failing = []
        for method, cfg in sorted(report["configs"].items()):
            if cfg["passed"]:
                continue
            for key in cfg["regressions"] or [f"geomean-vs-{method}"]:
                failing.append(SimpleNamespace(key=f"{key} (vs {method})"))
        exc = BenchRegressionError(failing)
        print(
            f"error: planner gate failed — {args.planned_method} is not >= "
            f"every static configuration: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    return EXIT_OK


def _resolve_candidate(args) -> Optional[Path]:
    if args.candidate is not None:
        return Path(args.candidate)
    from repro.bench.history import latest_run

    return latest_run(args.history_dir, exclude=Path(args.baseline))


def _cmd_gate(args) -> int:
    from repro.analysis.bench_compare import render_comparison
    from repro.bench.history import gate_documents
    from repro.bench.schema import load_document

    candidate = _resolve_candidate(args)
    if candidate is None:
        print(
            "error: no candidate document (run `repro bench run` first or pass --candidate)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    base = load_document(args.baseline)
    cur = load_document(candidate)
    try:
        report = gate_documents(
            base, cur, noise_threshold=args.threshold, alpha=args.alpha
        )
    except BenchRegressionError as exc:
        print(render_comparison(exc.report))
        if args.soft:
            print(f"warning (soft gate): {exc}", file=sys.stderr)
            return EXIT_OK
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    print(render_comparison(report))
    print(
        f"gate passed: {len(report.deltas)} series vs {args.baseline} "
        f"(geomean speedup {report.geomean_speedup():.3f}x)"
    )
    return EXIT_OK


def _cmd_report(args) -> int:
    from repro.analysis.profiling import diff_traces, load_chrome_trace, render_trace_diff

    if args.attribute is not None:
        base = load_chrome_trace(args.attribute[0])
        cur = load_chrome_trace(args.attribute[1])
        print(render_trace_diff(diff_traces(base, cur)))
        if args.doc is None and not args.roofline:
            return EXIT_OK

    from repro.analysis.reporting import format_table
    from repro.bench.history import latest_run
    from repro.bench.roofline import render_roofline, roofline_points
    from repro.bench.schema import load_document

    doc_path = args.doc
    if doc_path is None:
        found = latest_run(args.history_dir)
        if found is None:
            print("error: no result document (pass one or run `repro bench run`)", file=sys.stderr)
            return EXIT_USAGE
        doc_path = str(found)
    doc = load_document(doc_path)
    meta = doc["meta"]
    print(
        f"bench document {doc_path}: suite={meta['suite']} label={meta['label']} "
        f"series={len(doc['series'])} repeats={meta['repeats']}"
    )
    rows = []
    for s in doc["series"]:
        samples = s.get("wall_seconds") or []
        med = sorted(samples)[len(samples) // 2] if samples else None
        rows.append(
            [
                s["key"],
                len(samples),
                f"{med * 1e3:.3f}" if med is not None else "-",
                f"{s['gflops']:.3f}" if s.get("gflops") else "-",
                f"{s.get('estimates', {}).get('rtx3090', {}).get('gflops', 0.0):.2f}",
            ]
        )
    print(
        format_table(
            ["series", "samples", "median ms", "GFlops (measured)", "GFlops (3090 est)"],
            rows,
            title="series summary",
        )
    )
    if args.roofline:
        print()
        print(render_roofline(roofline_points(doc, device=args.device)))
    return EXIT_OK


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``bench`` subcommand family."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_USAGE if exc.code not in (0, None) else 0
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "gate": _cmd_gate,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        missing = getattr(exc, "filename", None) or exc
        print(f"error: file not found: {missing}", file=sys.stderr)
        return exit_code_for(exc)
    except InvalidInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
