"""The machine-readable benchmark runner behind ``repro bench run``.

Executes a named suite — a (matrix specs x methods x ops) grid — with
warmup/repeat control and deterministic seeding, and emits one canonical
result document (:mod:`repro.bench.schema`): per-series wall-clock
samples, measured GFlops, cost-model estimates per device, the
:class:`~repro.obs.metrics.MetricsRegistry` counters of one instrumented
execution, and the environment fingerprint.

The measurement discipline mirrors ``benchmarks/conftest.py``'s cached
pass: the tiled conversion is hoisted out of the timed region (the paper
times SpGEMM, not format conversion — Figure 12 prices conversion
separately), the first instrumented execution doubles as warmup, and
every timed repeat is a fresh full run of the registered algorithm.  When
the ``benchmarks`` package is importable (running from a repo checkout),
its conversion cache is reused so a bench session and a ``repro bench``
invocation share one tiling pass.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import resolve_backend_name, use_backend
from repro.baselines import get_algorithm
from repro.bench import schema
from repro.gpu import DEVICES, estimate_run
from repro.obs import MetricsRegistry, WorkloadProfiler, obs_context

__all__ = [
    "SuiteSpec",
    "SUITES",
    "BenchConfig",
    "BenchRunner",
    "available_suites",
]

#: Methods of the paper's main comparison (benchmarks/conftest.py order).
_PAPER_METHODS = ("cusparse_spa", "bhsparse_esc", "nsparse_hash", "speck", "tilespgemm")

#: Devices every series is estimated on (keys of ``repro.gpu.DEVICES``).
_ESTIMATE_DEVICES = ("rtx3060", "rtx3090")


@dataclass(frozen=True)
class SuiteSpec:
    """A named benchmark suite: which matrices, methods and ops to run."""

    name: str
    description: str
    specs: Callable[[], Sequence[Any]] = field(repr=False)  #: -> [MatrixSpec]
    methods: Tuple[str, ...] = _PAPER_METHODS
    ops: Tuple[str, ...] = ("aa",)


def _smoke_specs():
    from repro.matrices.generators import banded, powerlaw
    from repro.matrices.suite import MatrixSpec

    return [
        MatrixSpec("bench_smoke_banded", "fem", lambda: banded(600, 8, seed=11)),
        MatrixSpec(
            "bench_smoke_powerlaw",
            "powerlaw",
            lambda: powerlaw(800, 4.0, exponent=1.9, max_degree=120, seed=12),
            asymmetric=True,
        ),
    ]


def _ext_specs():
    from repro.matrices.suite import representative_18

    return representative_18()[:6]


def _representative_specs():
    from repro.matrices.suite import representative_18

    return representative_18()


def _fig6_specs():
    from repro.matrices.suite import full_dataset

    return full_dataset()


def _tsparse_specs():
    from repro.matrices.suite import tsparse_16

    return tsparse_16()


#: The suite registry; extend here and the CLI picks the entry up.
SUITES: Dict[str, SuiteSpec] = {
    "smoke": SuiteSpec(
        "smoke",
        "two tiny matrices, two methods — seconds, for tests and CI sanity",
        _smoke_specs,
        methods=("tilespgemm", "nsparse_hash"),
    ),
    "ext": SuiteSpec(
        "ext",
        "first six representative matrices x the paper's five methods",
        _ext_specs,
    ),
    "representative": SuiteSpec(
        "representative",
        "all 18 representative matrices x the paper's five methods",
        _representative_specs,
    ),
    "fig6": SuiteSpec(
        "fig6",
        "the full-dataset sweep (Figure 6) x the paper's five methods",
        _fig6_specs,
    ),
    "tsparse": SuiteSpec(
        "tsparse",
        "the tSparse 16-matrix dataset, TileSpGEMM vs tSparse",
        _tsparse_specs,
        methods=("tilespgemm", "tsparse"),
    ),
    "parallel": SuiteSpec(
        "parallel",
        "the ext matrices, serial TileSpGEMM vs the sharded engine at 2 "
        "and 4 workers (scaling of repro.runtime.parallel)",
        _ext_specs,
        methods=("tilespgemm", "tilespgemm_par2", "tilespgemm_par4"),
    ),
    "planner": SuiteSpec(
        "planner",
        "the ext matrices, the estimation-driven planner vs every static "
        "shard/worker configuration (gate: repro bench compare --planner)",
        _ext_specs,
        methods=(
            "tilespgemm",
            "tilespgemm_par2",
            "tilespgemm_par4",
            "tilespgemm_planned",
        ),
    ),
}


def available_suites() -> Dict[str, str]:
    """``{suite name: description}`` for help text."""
    return {name: s.description for name, s in sorted(SUITES.items())}


@dataclass
class BenchConfig:
    """Everything a run needs to be reproducible."""

    suite: str = "ext"
    label: str = ""
    warmup: int = 1
    repeats: int = 5
    seed: int = 0
    max_matrices: Optional[int] = None  #: None = REPRO_BENCH_MAX_MATRICES or all
    methods: Optional[Tuple[str, ...]] = None  #: None = the suite's methods
    devices: Tuple[str, ...] = _ESTIMATE_DEVICES
    backend: Optional[str] = None  #: kernel backend name; None = ambient default

    def resolved_cap(self) -> Optional[int]:
        if self.max_matrices is not None:
            return self.max_matrices
        raw = os.environ.get("REPRO_BENCH_MAX_MATRICES", "")
        return int(raw) if raw else None


def _tiled_of(a):
    """CSR -> tiled conversion, shared with the bench session cache when
    ``benchmarks.conftest`` is importable (repo checkout), local otherwise."""
    try:
        from benchmarks.conftest import tiled_of as shared

        return shared(a)
    except ImportError:
        from repro.core.tile_matrix import TileMatrix

        key = id(a)
        cached = _LOCAL_TILED.get(key)
        if cached is None:
            cached = _LOCAL_TILED[key] = TileMatrix.from_csr(a)
        return cached


_LOCAL_TILED: Dict[int, Any] = {}


class BenchRunner:
    """Execute one suite and emit a result document.

    >>> doc = BenchRunner(BenchConfig(suite="smoke", repeats=2, warmup=0)).run()
    >>> doc["schema"]
    'repro.bench/1'
    """

    def __init__(self, config: Optional[BenchConfig] = None) -> None:
        self.config = config or BenchConfig()
        if self.config.suite not in SUITES:
            from repro.errors import InvalidInputError

            raise InvalidInputError(
                f"unknown bench suite {self.config.suite!r}; "
                f"available: {sorted(SUITES)}"
            )

    # ------------------------------------------------------------------ run
    def run(self, progress: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
        """Run the configured suite; returns the validated document."""
        cfg = self.config
        suite = SUITES[cfg.suite]
        random.seed(cfg.seed)
        np.random.seed(cfg.seed % (2**32))
        # Resolve (and validate) the kernel backend once; the whole suite
        # runs under it as the scoped process default, and the document
        # records the resolved name so any two runs can be compared
        # backend-aware.
        backend_name = resolve_backend_name(cfg.backend)
        doc = schema.new_document(
            label=cfg.label or cfg.suite,
            suite=cfg.suite,
            warmup=cfg.warmup,
            repeats=cfg.repeats,
            seed=cfg.seed,
            backend=backend_name,
        )
        specs = list(suite.specs())
        cap = cfg.resolved_cap()
        if cap is not None:
            specs = specs[: max(int(cap), 0)]
        methods = tuple(cfg.methods) if cfg.methods else suite.methods
        with use_backend(backend_name):
            for spec in specs:
                a = spec.matrix()
                for op in suite.ops:
                    b = a if op == "aa" else a.transpose()
                    for method in methods:
                        if progress is not None:
                            progress(f"{spec.name} {method} {op}")
                        doc["series"].append(
                            self._measure_series(spec.name, method, op, a, b)
                        )
        schema.validate_document(doc)
        return doc

    # ------------------------------------------------------------- measure
    def _measure_series(
        self, matrix_name: str, method: str, op: str, a, b
    ) -> Dict[str, Any]:
        cfg = self.config
        kwargs: Dict[str, Any] = {}
        if method.startswith("tilespgemm"):
            # Every tiled variant (serial and the parallel adapters) takes
            # pre-tiled operands, keeping conversion out of the timed region.
            kwargs["a_tiled"] = _tiled_of(a)
            kwargs["b_tiled"] = _tiled_of(a) if op == "aa" else _tiled_of(b)
        fn = get_algorithm(method)

        # Instrumented pass: collects the kernel counters, the workload
        # profile and the result whose statistics feed the cost model;
        # doubles as the first warmup iteration so the counters cost no
        # extra execution.  The timed repeats below run outside the
        # context, so the samples price the algorithm alone.
        metrics = MetricsRegistry()
        profiler = WorkloadProfiler()
        with obs_context(metrics=metrics, profile=profiler):
            result = fn(a, b, **kwargs)
        for _ in range(max(cfg.warmup - 1, 0)):
            fn(a, b, **kwargs)

        samples: List[float] = []
        for _ in range(max(cfg.repeats, 0)):
            t0 = time.perf_counter()
            fn(a, b, **kwargs)
            samples.append(time.perf_counter() - t0)

        flops = result.flops
        median = float(np.median(samples)) if samples else 0.0
        gflops = flops / median / 1e9 if median > 0 else None

        # Estimates run under the same profiler so each one deposits a
        # calibration sample (prediction joined with the measured pass)
        # into the series' embedded profile.
        estimates: Dict[str, Any] = {}
        for dev_key in cfg.devices:
            with obs_context(profile=profiler):
                est = estimate_run(result, DEVICES[dev_key])
            estimates[dev_key] = {
                "device": est.device.name,
                "seconds": est.seconds if np.isfinite(est.seconds) else -1.0,
                "gflops": est.gflops,
                "oom": bool(est.oom),
                "malloc_s": est.malloc_s,
                "kernels": {
                    k.name: {
                        "seconds": k.seconds,
                        "compute_s": k.compute_s,
                        "memory_s": k.memory_s,
                        "launch_s": k.launch_s,
                        "bound": k.bound,
                        "tasks": int(k.task_cycles.size)
                        if k.task_cycles is not None
                        else 0,
                    }
                    for k in est.kernels
                },
            }

        return schema.make_series(
            matrix=matrix_name,
            method=method,
            op=op,
            wall_seconds=samples,
            gflops=gflops,
            flops=flops,
            n=a.shape[0],
            nnz=a.nnz,
            nnz_c=int(result.stats.get("nnz_c", result.c.nnz)),
            phases={name: st.total for name, st in result.timer.summary().items()},
            counters=dict(metrics.snapshot()["counters"]),
            estimates=estimates,
            # Per-series: the process-wide tile-cache counters would smear
            # across series, so the snapshot is omitted here.
            profile=profiler.to_dict(include_cache=False),
        )
