"""``python -m repro``: the paper artifact's command-line workflow."""

import sys

from repro.cli import main

sys.exit(main())
