"""Live telemetry endpoint: ``/metrics``, ``/healthz`` and ``/varz``.

A long-running serve process is only observable if its counters can be
scraped *while it runs* — writing a ``metrics.prom`` artifact at exit is
fine for batch runs and useless for a service.  :class:`TelemetryServer`
exposes the live :class:`~repro.obs.metrics.MetricsRegistry` over a tiny
stdlib HTTP server on a daemon thread:

* ``GET /metrics`` — Prometheus text exposition (v0.0.4), rendered from
  the live registry at scrape time;
* ``GET /healthz`` — ``ok`` (200) while the optional ``health_fn`` says
  so, 503 otherwise — the readiness probe;
* ``GET /varz``   — a JSON status snapshot from ``varz_fn`` (queue
  depth, high-water, in-flight count, outcome counters...), all values
  coerced to native types.

Scrapes race with metric updates by design — the registry's dicts are
only guarded by the GIL, so a scrape can observe a dict mid-resize and
get ``RuntimeError: dictionary changed size during iteration``.  The
handler retries the render a few times before giving up with a 503; a
Prometheus scraper treats that as one missed scrape, which is the
correct semantic (the alternative, locking every ``inc()`` on the hot
path, would tax the algorithm to benefit the scraper).

Only the standard library is imported; the server binds to
``127.0.0.1`` and an ephemeral port by default.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.native import json_default, to_native

__all__ = ["TelemetryServer", "parse_listen"]

#: Renders retried on ``RuntimeError`` (scrape racing a dict resize).
_SCRAPE_RETRIES = 8


def parse_listen(value: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` listen spec (``:PORT`` binds localhost)."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"invalid listen spec {value!r} (want HOST:PORT)")
    return (host or "127.0.0.1", int(port))


class TelemetryServer:
    """A stdlib HTTP server exposing live metrics and status.

    Parameters
    ----------
    metrics:
        The live registry rendered at ``/metrics`` (``None`` → empty
        exposition).
    varz_fn:
        Zero-arg callable returning the ``/varz`` status dict (``None``
        → ``{}``).  Called at request time; values are coerced via
        :func:`~repro.obs.native.to_native` before JSON encoding.
    health_fn:
        Zero-arg callable; truthy → ``/healthz`` answers 200 ``ok``,
        falsy → 503 ``unhealthy``.  ``None`` → always healthy.
    host, port:
        Bind address; port 0 picks an ephemeral port — read the bound
        one from :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        metrics: Optional[object] = None,
        varz_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        health_fn: Optional[Callable[[], bool]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.metrics = metrics
        self.varz_fn = varz_fn
        self.health_fn = health_fn
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # --------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._httpd is not None:
            return self.address
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                server._handle(self)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes must not spam stderr

        self._httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._httpd is None:
            return (self._host, self._port)
        addr = self._httpd.server_address
        return (str(addr[0]), int(addr[1]))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False

    # ---------------------------------------------------------- handlers
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            body, status, ctype = self._render_metrics()
        elif path == "/healthz":
            body, status, ctype = self._render_health()
        elif path == "/varz":
            body, status, ctype = self._render_varz()
        else:
            body, status, ctype = (b"not found\n", 404, "text/plain")
        request.send_response(status)
        request.send_header("Content-Type", ctype)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def _render_metrics(self) -> Tuple[bytes, int, str]:
        ctype = "text/plain; version=0.0.4; charset=utf-8"
        if self.metrics is None:
            return (b"", 200, ctype)
        for attempt in range(_SCRAPE_RETRIES):
            try:
                return (self.metrics.to_prometheus().encode(), 200, ctype)
            except RuntimeError:
                continue  # dict resized mid-scrape; re-render
        return (b"scrape raced metric updates; retry\n", 503, "text/plain")

    def _render_health(self) -> Tuple[bytes, int, str]:
        healthy = True if self.health_fn is None else bool(self.health_fn())
        if healthy:
            return (b"ok\n", 200, "text/plain")
        return (b"unhealthy\n", 503, "text/plain")

    def _render_varz(self) -> Tuple[bytes, int, str]:
        snapshot: Dict[str, Any] = {}
        if self.varz_fn is not None:
            for attempt in range(_SCRAPE_RETRIES):
                try:
                    snapshot = to_native(self.varz_fn())
                    break
                except RuntimeError:
                    continue
            else:
                return (
                    b'{"error": "varz raced updates; retry"}\n',
                    503,
                    "application/json",
                )
        body = json.dumps(snapshot, default=json_default, sort_keys=True)
        return (body.encode() + b"\n", 200, "application/json")
