"""Coercion of exported telemetry values to native Python types.

Span attributes, metric values and ``/varz`` documents routinely pick up
NumPy scalars — ``nnz`` counts are ``np.int64``, timings ``np.float64``
— and ``json.dump`` refuses the integer kinds outright.  Every export
surface (``Tracer.write``, ``MetricsRegistry.snapshot``/``to_prometheus``,
the structured event log and the ``/varz`` endpoint) funnels its payload
through :func:`to_native` so a stray ``np.int64`` attribute can never
crash an export.

The module imports only the standard library: NumPy scalars are detected
structurally (``.item()`` / ``.tolist()``), so the observability layer
keeps its no-upward-imports property.
"""

from __future__ import annotations

from typing import Any

__all__ = ["to_native", "json_default"]


def to_native(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-native Python types.

    * NumPy scalars (anything scalar exposing ``.item()``) become the
      matching ``int`` / ``float`` / ``bool``;
    * NumPy arrays (``.tolist()``) become (nested) lists of natives;
    * ``dict`` / ``list`` / ``tuple`` / ``set`` recurse (tuples and sets
      become lists — the JSON shape they serialise to anyway);
    * native scalars and strings pass through unchanged.

    Unknown objects are returned as-is; pair with :func:`json_default`
    when serialising so even those degrade to strings instead of raising.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {_native_key(k): to_native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_native(v) for v in value]
    # NumPy ndarray (and anything array-like that knows how to listify).
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        try:
            return to_native(tolist())
        except Exception:
            pass
    # NumPy scalar: 0-d, knows .item(); also covers np.bool_, np.float32...
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", ()) == ():
        try:
            return to_native(item())
        except Exception:
            pass
    return value


def _native_key(key: Any) -> Any:
    native = to_native(key)
    if isinstance(native, (str, int, float, bool)) or native is None:
        return native
    return str(native)


def json_default(value: Any) -> Any:
    """``json.dump(..., default=json_default)`` fallback: natives, else str."""
    native = to_native(value)
    if native is not value:
        return native
    return str(value)
