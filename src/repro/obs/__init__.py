"""Observability: structured tracing, kernel-counter metrics, exports.

The instrumentation layer the ROADMAP's performance work stands on — you
cannot tune the adaptive-accumulator switch or the SUMMA broadcast costs
without seeing the counters and the timeline.  Three pieces:

* :mod:`repro.obs.trace` — hierarchical spans with Chrome trace-event
  (Perfetto / ``chrome://tracing``) JSON export;
* :mod:`repro.obs.metrics` — counters/gauges/histograms of the
  algorithm's decision points, with deterministic snapshots and
  Prometheus text export;
* :mod:`repro.obs.context` — the ambient :class:`ObsContext` carried
  through ``tile_spgemm``, every baseline, the resilient runtime and
  distributed SUMMA;
* :mod:`repro.obs.gputrace` — the cost model's warp-task schedules laid
  out on virtual SM/slot tracks;
* :mod:`repro.obs.propagate` — serialisable :class:`TraceContext`
  identities carried into thread/process pool workers, worker-local
  span recording and coordinator-side merge;
* :mod:`repro.obs.log` — structured JSON-lines event log correlated by
  trace/request id, replayable into the serving tier's outcome tally;
* :mod:`repro.obs.http` — a stdlib HTTP endpoint serving ``/metrics``
  (Prometheus text), ``/healthz`` and ``/varz`` from a live run;
* :mod:`repro.obs.slo` — per-tenant latency objectives with
  error-budget burn-rate gauges;
* :mod:`repro.obs.profile` — the always-on workload profiler: per-phase
  / per-tile-row-band work attribution, tnnz decisions and cost-model
  calibration samples aggregated into ``repro.profile/1`` artifacts.

Typical use::

    from repro.obs import make_obs, obs_context

    obs = make_obs()
    with obs_context(tracer=obs.tracer, metrics=obs.metrics):
        result = tile_spgemm(a, b)
    obs.tracer.write("trace.json")      # open in https://ui.perfetto.dev
    print(obs.metrics.to_prometheus())

Everything is zero-cost when disabled: outside an :func:`obs_context`
the no-op singletons absorb every call, and guarded sites skip even the
attribute arithmetic.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.context import NULL_OBS, ObsContext, current_obs, make_obs, obs_context
from repro.obs.gputrace import emit_gpu_timeline
from repro.obs.http import TelemetryServer
from repro.obs.log import NULL_LOG, EventLog, NullEventLog, load_events, replay_outcomes
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.native import json_default, to_native
from repro.obs.profile import (
    DEFAULT_BAND_TILE_ROWS,
    NULL_PROFILER,
    PROFILE_SCHEMA,
    NullProfiler,
    WorkloadProfiler,
    current_row_offset,
    load_profile,
    profile_row_offset,
    render_profile,
    validate_profile,
    write_profile,
)
from repro.obs.propagate import (
    TraceContext,
    WorkerTelemetry,
    absorb_telemetry,
    new_trace_id,
    run_with_worker_obs,
    span_id_of,
)
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.obs.trace import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "ObsContext",
    "NULL_OBS",
    "obs_context",
    "current_obs",
    "make_obs",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "emit_gpu_timeline",
    "EventLog",
    "NullEventLog",
    "NULL_LOG",
    "load_events",
    "replay_outcomes",
    "TraceContext",
    "WorkerTelemetry",
    "new_trace_id",
    "span_id_of",
    "run_with_worker_obs",
    "absorb_telemetry",
    "TelemetryServer",
    "SLOPolicy",
    "SLOTracker",
    "to_native",
    "json_default",
    "WorkloadProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "PROFILE_SCHEMA",
    "DEFAULT_BAND_TILE_ROWS",
    "profile_row_offset",
    "current_row_offset",
    "validate_profile",
    "write_profile",
    "load_profile",
    "render_profile",
]
