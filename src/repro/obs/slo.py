"""Per-tenant latency SLOs: attainment and error-budget burn rate.

An SLO here is "fraction ``objective`` of requests complete successfully
within ``latency_target_s``".  The tracker folds every finished request
into per-tenant good/bad counts and exports two gauges:

* ``slo_attainment{tenant=...}`` — fraction of requests that met the
  objective so far (1.0 with no traffic: an empty window has consumed
  no budget);
* ``slo_error_budget_burn_rate{tenant=...}`` — how fast the tenant is
  spending its error budget: ``bad_fraction / (1 - objective)``.  Burn
  rate 1.0 means the budget is being consumed exactly as provisioned;
  above 1.0 the tenant will exhaust its budget before the window ends
  (the standard multi-window burn-rate alerting quantity).

"Bad" means *either* a non-served outcome (shed, deadline, failed...)
*or* a served response slower than the target — an SLO user cares about
useful responses in time, not about which subsystem ate the request.

The math is deliberately cumulative over the run (no decaying window):
runs here are minutes, not weeks, and cumulative counts keep replay
(:func:`repro.obs.log.replay_outcomes`) and metrics in exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SLOPolicy", "SLOTracker", "DEFAULT_SLO"]


@dataclass(frozen=True)
class SLOPolicy:
    """One latency objective applied to every tenant.

    Attributes
    ----------
    latency_target_s:
        A request is "good" when served within this many seconds.
    objective:
        Target fraction of good requests (e.g. ``0.95``); defines the
        error budget ``1 - objective``.
    """

    latency_target_s: float = 0.5
    objective: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.latency_target_s <= 0:
            raise ValueError(
                f"latency_target_s must be positive, got {self.latency_target_s}"
            )

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction, ``1 - objective``."""
        return 1.0 - self.objective


DEFAULT_SLO = SLOPolicy()


class SLOTracker:
    """Folds finished requests into per-tenant SLO gauges.

    Parameters
    ----------
    policy:
        The :class:`SLOPolicy` applied to every tenant.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, :meth:`record` refreshes the ``slo_attainment`` and
        ``slo_error_budget_burn_rate`` gauges for the tenant on every
        request, so a mid-run ``/metrics`` scrape sees current values.
    """

    def __init__(self, policy: SLOPolicy = DEFAULT_SLO, metrics=None) -> None:
        self.policy = policy
        self.metrics = metrics
        self._good: Dict[str, int] = {}
        self._total: Dict[str, int] = {}
        if metrics is not None:
            metrics.describe(
                "slo_attainment",
                "Fraction of requests served within the latency target",
            )
            metrics.describe(
                "slo_error_budget_burn_rate",
                "Error-budget consumption rate (1.0 = budget spent exactly as provisioned)",
            )

    def record(self, tenant: str, latency_s: float, served: bool) -> bool:
        """Fold one finished request; returns whether it was good."""
        good = bool(served) and latency_s <= self.policy.latency_target_s
        self._total[tenant] = self._total.get(tenant, 0) + 1
        if good:
            self._good[tenant] = self._good.get(tenant, 0) + 1
        if self.metrics is not None:
            self.metrics.set_gauge(
                "slo_attainment", self.attainment(tenant), tenant=tenant
            )
            self.metrics.set_gauge(
                "slo_error_budget_burn_rate",
                self.burn_rate(tenant),
                tenant=tenant,
            )
        return good

    # ------------------------------------------------------------ queries
    def tenants(self) -> List[str]:
        return sorted(self._total)

    def attainment(self, tenant: str) -> float:
        """Good fraction for ``tenant`` (1.0 with no traffic)."""
        total = self._total.get(tenant, 0)
        if total == 0:
            return 1.0
        return self._good.get(tenant, 0) / total

    def burn_rate(self, tenant: str) -> float:
        """Error-budget burn rate: ``bad_fraction / error_budget``."""
        return (1.0 - self.attainment(tenant)) / self.policy.error_budget

    def report(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant summary (deterministic key order)."""
        out: Dict[str, Dict[str, Any]] = {}
        for tenant in self.tenants():
            total = self._total[tenant]
            good = self._good.get(tenant, 0)
            out[tenant] = {
                "total": total,
                "good": good,
                "bad": total - good,
                "attainment": self.attainment(tenant),
                "objective": self.policy.objective,
                "burn_rate": self.burn_rate(tenant),
                "latency_target_s": self.policy.latency_target_s,
            }
        return out
