"""``python -m repro obs`` — live and offline views of the telemetry.

``obs top``
    A live terminal view of a running service's ``/varz`` endpoint:
    queue depth against its bound, in-flight count, per-tenant outcome
    counters and the SLO burn rates — refreshed every ``--interval``
    seconds until interrupted (or for ``--iterations`` refreshes).
    Point it at the ``--listen`` address of ``repro serve run``::

        python -m repro serve run --requests 500 --listen 127.0.0.1:9100 &
        python -m repro obs top --url http://127.0.0.1:9100

``obs slo``
    An offline per-tenant SLO report from a Prometheus snapshot — a
    ``--metrics`` artifact file or a live ``/metrics`` scrape::

        python -m repro obs slo --metrics serve.prom --target 0.5

``obs profile``
    The workload hotspot report: phases, top tile-row bands by
    intermediate products, shard shape, tile-cache counters.  Renders
    an existing ``repro.profile/1`` artifact, or records a fresh one by
    running a bench suite under the profiler::

        python -m repro obs profile --suite smoke --out profile.json
        python -m repro obs profile profile.json --top 5

``obs calibrate``
    The cost-model prediction-error report joined from a profile
    artifact's calibration samples: per estimator family, signed bias
    and absolute error per phase and compression-rate band.
    ``--check`` gates on structure and on drift against a ``--baseline``
    report, exiting ``EXIT_CALIBRATION`` (13) when the gate fails::

        python -m repro obs calibrate profile.json --out calib.json
        python -m repro obs calibrate profile.json --check --baseline calib.json

Exit codes follow the repo-wide contract: 0 on success, 2 for bad
flags, 3 for malformed artifacts, 4 when a snapshot file is missing,
``obs slo --check`` exits 8 when any tenant's burn rate exceeds 1.0
(the budget is being spent faster than provisioned — the alerting
condition), and ``obs calibrate --check`` exits 13 on calibration
drift.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import (
    EXIT_CALIBRATION,
    EXIT_EXHAUSTED,
    EXIT_FILE_NOT_FOUND,
    EXIT_USAGE,
    CalibrationDriftError,
    InvalidInputError,
    exit_code_for,
)

__all__ = ["obs_main"]

#: Exit code of ``obs slo --check`` when a tenant is over budget —
#: reuses the "recovery exhausted" slot: the error budget ran out.
EXIT_BURN = EXIT_EXHAUSTED


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="live and offline telemetry views (docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser("top", help="live /varz view of a running service")
    top.add_argument(
        "--url", default="http://127.0.0.1:9100", metavar="URL",
        help="base URL of the --listen endpoint (default http://127.0.0.1:9100)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default 0: until interrupted)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of redrawing in place (for logs/CI)",
    )

    slo = sub.add_parser("slo", help="per-tenant SLO report from a snapshot")
    src = slo.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--metrics", default=None, metavar="FILE.prom",
        help="Prometheus snapshot file (a --metrics artifact)",
    )
    src.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape URL/metrics from a live endpoint instead",
    )
    slo.add_argument(
        "--target", type=float, default=0.5, metavar="SECONDS",
        help="latency target (default 0.5; use a histogram bucket bound)",
    )
    slo.add_argument(
        "--objective", type=float, default=0.95, metavar="FRAC",
        help="objective fraction (default 0.95)",
    )
    slo.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    slo.add_argument(
        "--check", action="store_true",
        help=f"exit {EXIT_BURN} when any tenant's burn rate exceeds 1.0",
    )

    profile = sub.add_parser(
        "profile", help="workload hotspot report from a repro.profile/1 artifact"
    )
    profile.add_argument(
        "artifact", nargs="?", default=None,
        help="profile artifact to render (omit with --suite to record one)",
    )
    profile.add_argument(
        "--suite", default=None, metavar="NAME",
        help="record a fresh profile by running this bench suite "
        "(see `repro bench run --help` for the registry)",
    )
    profile.add_argument(
        "--max-matrices", type=int, default=None, metavar="N",
        help="cap the suite's matrix list (with --suite)",
    )
    profile.add_argument(
        "--out", default=None, metavar="PROFILE.json",
        help="write the artifact here (with --suite)",
    )
    profile.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="tile-row bands in the hotspot table (default 10)",
    )
    profile.add_argument(
        "--json", action="store_true", help="print the artifact as JSON"
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="cost-model prediction-error report from a profile artifact",
    )
    calibrate.add_argument(
        "artifact", help="repro.profile/1 artifact with calibration samples"
    )
    calibrate.add_argument(
        "--out", default=None, metavar="CALIB.json",
        help="write the repro.calibration/1 report here (a future --baseline)",
    )
    calibrate.add_argument(
        "--baseline", default=None, metavar="CALIB.json",
        help="prior calibration report to gate drift against (with --check)",
    )
    calibrate.add_argument(
        "--tolerance", type=float, default=None, metavar="FACTOR",
        help="allowed per-family error-ratio drift factor (default 4.0)",
    )
    calibrate.add_argument(
        "--metrics", default=None, metavar="OUT.prom",
        help="also export the report as Prometheus gauges to this file",
    )
    calibrate.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="also export the report as Perfetto counter tracks to this file",
    )
    calibrate.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    calibrate.add_argument(
        "--check", action="store_true",
        help=f"exit {EXIT_CALIBRATION} on structural breakage or drift",
    )
    return parser


def _fetch(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def _render_top(varz: Dict[str, Any]) -> str:
    lines: List[str] = []
    queue = varz.get("queue", {})
    state = "running" if varz.get("running") else "stopped"
    if varz.get("running") and not varz.get("accepting"):
        state = "draining"
    lines.append(
        f"service: {state}  uptime {varz.get('uptime_s', 0.0):.1f}s  "
        f"workers {varz.get('workers', '?')} ({varz.get('executor', '?')})  "
        f"inflight {varz.get('inflight', 0)}"
    )
    lines.append(
        f"queue:   depth {queue.get('depth', 0)}/{queue.get('bound', 0)}  "
        f"high-water {queue.get('high_water', 0)}  "
        f"pool replacements {varz.get('pool_replacements', 0)}"
    )
    requests = varz.get("requests_total", {})
    outcomes = varz.get("outcomes_total", {})
    slo = varz.get("slo", {})
    tenants = sorted(set(requests) | set(outcomes) | set(slo))
    if tenants:
        lines.append(
            f"{'tenant':<12} {'submitted':>9} {'served':>7} {'shed':>5} "
            f"{'deadline':>8} {'exhausted':>9} {'attain':>7} {'burn':>7}"
        )
        for tenant in tenants:
            out = outcomes.get(tenant, {})
            s = slo.get(tenant, {})
            lines.append(
                f"{tenant:<12} {int(requests.get(tenant, 0)):>9} "
                f"{int(out.get('served', 0)):>7} {int(out.get('shed', 0)):>5} "
                f"{int(out.get('deadline', 0)):>8} "
                f"{int(out.get('exhausted', 0)):>9} "
                f"{s.get('attainment', 1.0):>7.3f} "
                f"{s.get('burn_rate', 0.0):>7.2f}"
            )
    else:
        lines.append("(no traffic yet)")
    cache = varz.get("tilecache")
    if cache:
        lines.append(
            f"tilecache: {int(cache.get('hits', 0))} hits / "
            f"{int(cache.get('misses', 0))} misses / "
            f"{int(cache.get('evictions', 0))} evictions  "
            f"{int(cache.get('size', 0))}/{int(cache.get('capacity', 0))} entries  "
            f"{int(cache.get('resident_bytes', 0))} B resident"
        )
    prof = varz.get("profile")
    if prof:
        top = prof.get("top_band") or {}
        rows = top.get("tile_rows", ["?", "?"])
        hot = (
            f"  hot tile rows [{rows[0]}, {rows[1]}) "
            f"({int(top.get('products', 0))} products)"
            if top
            else ""
        )
        lines.append(
            f"profile: {int(prof.get('runs', 0))} runs  "
            f"{int(prof.get('products', 0))} products -> "
            f"{int(prof.get('nnz_c', 0))} nnz(C){hot}"
        )
    return "\n".join(lines)


def _top(args) -> int:
    base = args.url.rstrip("/")
    iteration = 0
    try:
        while True:
            try:
                varz = json.loads(_fetch(f"{base}/varz"))
            except (urllib.error.URLError, OSError) as exc:
                print(f"error: cannot reach {base}/varz: {exc}", file=sys.stderr)
                return exit_code_for(InvalidInputError(str(exc)))
            frame = _render_top(varz)
            if args.no_clear:
                print(frame)
                print("-" * 72)
            else:
                # ANSI home+clear keeps the view in place like top(1).
                sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
                sys.stdout.flush()
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


def _slo(args) -> int:
    from repro.analysis.slo import render_slo_report, slo_report_from_text

    if args.metrics is not None:
        try:
            with open(args.metrics) as fh:
                text = fh.read()
        except FileNotFoundError:
            print(f"error: no such snapshot: {args.metrics}", file=sys.stderr)
            return EXIT_FILE_NOT_FOUND
    else:
        try:
            text = _fetch(args.url.rstrip("/") + "/metrics").decode()
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot scrape {args.url}: {exc}", file=sys.stderr)
            return exit_code_for(InvalidInputError(str(exc)))
    try:
        report = slo_report_from_text(
            text, latency_target_s=args.target, objective=args.objective
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo_report(report))
    if args.check and any(
        row["burn_rate"] > 1.0 for row in report.values()
    ):
        return EXIT_BURN
    return 0


def _record_suite_profile(
    suite_name: str, max_matrices: Optional[int] = None
) -> Dict[str, Any]:
    """Run one bench suite's grid once under a fresh profiler.

    Single profiled execution per (matrix, method, op) cell plus one
    :func:`~repro.gpu.costmodel.estimate_run` per device, so the
    artifact carries both the workload bands and the calibration
    samples.  Much lighter than ``repro bench run`` (no timed repeats).
    """
    from repro.baselines import get_algorithm
    from repro.bench.runner import SUITES
    from repro.gpu import DEVICES, estimate_run
    from repro.obs.context import obs_context
    from repro.obs.profile import WorkloadProfiler

    suite = SUITES.get(suite_name)
    if suite is None:
        raise InvalidInputError(
            f"unknown bench suite {suite_name!r}; available: {sorted(SUITES)}"
        )
    specs = list(suite.specs())
    if max_matrices is not None:
        specs = specs[: max(int(max_matrices), 0)]
    profiler = WorkloadProfiler()
    with obs_context(profile=profiler):
        for spec in specs:
            a = spec.matrix()
            for op in suite.ops:
                b = a if op == "aa" else a.transpose()
                for method in suite.methods:
                    print(f"  profiling {spec.name} {method} {op}", file=sys.stderr)
                    result = get_algorithm(method)(a, b)
                    for dev_key in ("rtx3060", "rtx3090"):
                        estimate_run(result, DEVICES[dev_key])
    return profiler.to_dict()


def _profile(args) -> int:
    from repro.obs.profile import load_profile, render_profile, write_profile

    if args.suite is not None:
        doc = _record_suite_profile(args.suite, args.max_matrices)
        if args.out:
            write_profile(doc, args.out)
            print(f"wrote {args.out}", file=sys.stderr)
    elif args.artifact is not None:
        doc = load_profile(args.artifact)
    else:
        print(
            "error: pass a profile artifact or --suite NAME to record one",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(render_profile(doc, top=args.top))
    return 0


def _calibrate(args) -> int:
    from repro.analysis.calibration import (
        DEFAULT_TOLERANCE,
        calibrate_profile,
        calibration_to_metrics,
        check_calibration,
        emit_calibration_counters,
        load_calibration,
        render_calibration,
        write_calibration,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import load_profile
    from repro.obs.trace import Tracer

    report = calibrate_profile(load_profile(args.artifact))
    if args.out:
        write_calibration(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.metrics:
        registry = MetricsRegistry()
        calibration_to_metrics(report, registry)
        registry.write(args.metrics)
        print(f"wrote {args.metrics}", file=sys.stderr)
    if args.trace:
        tracer = Tracer()
        emit_calibration_counters(report, tracer)
        tracer.write(args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_calibration(report))
    if args.check:
        baseline = load_calibration(args.baseline) if args.baseline else None
        tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        try:
            check_calibration(report, baseline=baseline, tolerance=tolerance)
        except CalibrationDriftError as exc:
            for problem in exc.problems:
                print(f"calibration check failed: {problem}", file=sys.stderr)
            return exit_code_for(exc)
        print("calibration check passed", file=sys.stderr)
    return 0


def obs_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``obs`` subcommand family."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "top": _top,
        "slo": _slo,
        "profile": _profile,
        "calibrate": _calibrate,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        missing = getattr(exc, "filename", None) or exc
        print(f"error: file not found: {missing}", file=sys.stderr)
        return exit_code_for(exc)
    except InvalidInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
