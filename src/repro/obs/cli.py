"""``python -m repro obs`` — live and offline views of the telemetry.

``obs top``
    A live terminal view of a running service's ``/varz`` endpoint:
    queue depth against its bound, in-flight count, per-tenant outcome
    counters and the SLO burn rates — refreshed every ``--interval``
    seconds until interrupted (or for ``--iterations`` refreshes).
    Point it at the ``--listen`` address of ``repro serve run``::

        python -m repro serve run --requests 500 --listen 127.0.0.1:9100 &
        python -m repro obs top --url http://127.0.0.1:9100

``obs slo``
    An offline per-tenant SLO report from a Prometheus snapshot — a
    ``--metrics`` artifact file or a live ``/metrics`` scrape::

        python -m repro obs slo --metrics serve.prom --target 0.5

Exit codes follow the repo-wide contract: 0 on success, 2 for bad
flags, 4 when a snapshot file is missing, and ``obs slo --check`` exits
8 when any tenant's burn rate exceeds 1.0 (the budget is being spent
faster than provisioned — the alerting condition).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import (
    EXIT_EXHAUSTED,
    EXIT_FILE_NOT_FOUND,
    EXIT_USAGE,
    InvalidInputError,
    exit_code_for,
)

__all__ = ["obs_main"]

#: Exit code of ``obs slo --check`` when a tenant is over budget —
#: reuses the "recovery exhausted" slot: the error budget ran out.
EXIT_BURN = EXIT_EXHAUSTED


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="live and offline telemetry views (docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser("top", help="live /varz view of a running service")
    top.add_argument(
        "--url", default="http://127.0.0.1:9100", metavar="URL",
        help="base URL of the --listen endpoint (default http://127.0.0.1:9100)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default 1.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default 0: until interrupted)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of redrawing in place (for logs/CI)",
    )

    slo = sub.add_parser("slo", help="per-tenant SLO report from a snapshot")
    src = slo.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--metrics", default=None, metavar="FILE.prom",
        help="Prometheus snapshot file (a --metrics artifact)",
    )
    src.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape URL/metrics from a live endpoint instead",
    )
    slo.add_argument(
        "--target", type=float, default=0.5, metavar="SECONDS",
        help="latency target (default 0.5; use a histogram bucket bound)",
    )
    slo.add_argument(
        "--objective", type=float, default=0.95, metavar="FRAC",
        help="objective fraction (default 0.95)",
    )
    slo.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    slo.add_argument(
        "--check", action="store_true",
        help=f"exit {EXIT_BURN} when any tenant's burn rate exceeds 1.0",
    )
    return parser


def _fetch(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def _render_top(varz: Dict[str, Any]) -> str:
    lines: List[str] = []
    queue = varz.get("queue", {})
    state = "running" if varz.get("running") else "stopped"
    if varz.get("running") and not varz.get("accepting"):
        state = "draining"
    lines.append(
        f"service: {state}  uptime {varz.get('uptime_s', 0.0):.1f}s  "
        f"workers {varz.get('workers', '?')} ({varz.get('executor', '?')})  "
        f"inflight {varz.get('inflight', 0)}"
    )
    lines.append(
        f"queue:   depth {queue.get('depth', 0)}/{queue.get('bound', 0)}  "
        f"high-water {queue.get('high_water', 0)}  "
        f"pool replacements {varz.get('pool_replacements', 0)}"
    )
    requests = varz.get("requests_total", {})
    outcomes = varz.get("outcomes_total", {})
    slo = varz.get("slo", {})
    tenants = sorted(set(requests) | set(outcomes) | set(slo))
    if tenants:
        lines.append(
            f"{'tenant':<12} {'submitted':>9} {'served':>7} {'shed':>5} "
            f"{'deadline':>8} {'exhausted':>9} {'attain':>7} {'burn':>7}"
        )
        for tenant in tenants:
            out = outcomes.get(tenant, {})
            s = slo.get(tenant, {})
            lines.append(
                f"{tenant:<12} {int(requests.get(tenant, 0)):>9} "
                f"{int(out.get('served', 0)):>7} {int(out.get('shed', 0)):>5} "
                f"{int(out.get('deadline', 0)):>8} "
                f"{int(out.get('exhausted', 0)):>9} "
                f"{s.get('attainment', 1.0):>7.3f} "
                f"{s.get('burn_rate', 0.0):>7.2f}"
            )
    else:
        lines.append("(no traffic yet)")
    return "\n".join(lines)


def _top(args) -> int:
    base = args.url.rstrip("/")
    iteration = 0
    try:
        while True:
            try:
                varz = json.loads(_fetch(f"{base}/varz"))
            except (urllib.error.URLError, OSError) as exc:
                print(f"error: cannot reach {base}/varz: {exc}", file=sys.stderr)
                return exit_code_for(InvalidInputError(str(exc)))
            frame = _render_top(varz)
            if args.no_clear:
                print(frame)
                print("-" * 72)
            else:
                # ANSI home+clear keeps the view in place like top(1).
                sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
                sys.stdout.flush()
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


def _slo(args) -> int:
    from repro.analysis.slo import render_slo_report, slo_report_from_text

    if args.metrics is not None:
        try:
            with open(args.metrics) as fh:
                text = fh.read()
        except FileNotFoundError:
            print(f"error: no such snapshot: {args.metrics}", file=sys.stderr)
            return EXIT_FILE_NOT_FOUND
    else:
        try:
            text = _fetch(args.url.rstrip("/") + "/metrics").decode()
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot scrape {args.url}: {exc}", file=sys.stderr)
            return exit_code_for(InvalidInputError(str(exc)))
    try:
        report = slo_report_from_text(
            text, latency_target_s=args.target, objective=args.objective
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo_report(report))
    if args.check and any(
        row["burn_rate"] > 1.0 for row in report.values()
    ):
        return EXIT_BURN
    return 0


def obs_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``obs`` subcommand family."""
    args = _build_parser().parse_args(argv)
    if args.command == "top":
        return _top(args)
    return _slo(args)
