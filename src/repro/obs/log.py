"""Structured JSON-lines event log, correlated by trace/request id.

Traces answer "where did the time go", metrics answer "how often" — the
event log answers "what exactly happened to request X, in order".  Every
record is one JSON object per line::

    {"ts": 1723100000.123, "event": "request_done", "trace_id": "...",
     "tenant": "tenant0", "seq": 3, "outcome": "served", ...}

Design points:

* **Append-only and crash-safe** — when constructed with a ``path`` the
  log writes (and flushes) each line as it is emitted, so a run that
  dies mid-flight still leaves every event up to the failure on disk;
* **Replayable** — :func:`replay_outcomes` folds a log back into the
  per-request outcome tally, which must equal the
  ``serve_outcomes_total`` counters of the same run (the acceptance
  check of the serving tier's accounting);
* **Native types only** — every field passes through
  :func:`~repro.obs.native.to_native`, so NumPy scalars in event fields
  can never crash the export;
* **Zero-cost when disabled** — :data:`NULL_LOG` absorbs every call.

Like the rest of :mod:`repro.obs`, only the standard library is
imported.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.native import json_default, to_native

__all__ = [
    "EventLog",
    "NullEventLog",
    "NULL_LOG",
    "load_events",
    "replay_outcomes",
]


class EventLog:
    """A thread-safe, append-only structured event log.

    Parameters
    ----------
    path:
        Optional file to stream JSON lines into as events are emitted
        (opened immediately, line-buffered by explicit flush).  Without
        a path events are only buffered in :attr:`records`;
        :meth:`write` dumps them later.
    clock:
        Wall-clock source for the ``ts`` field (default
        :func:`time.time`; tests inject a fake for deterministic logs).
    """

    enabled: bool = True

    def __init__(self, path=None, clock=time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.records: List[Dict[str, Any]] = []
        self.path = path
        self._fh = open(path, "a") if path is not None else None

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record that was written."""
        record: Dict[str, Any] = {"ts": float(self._clock()), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = to_native(value)
        with self._lock:
            self.records.append(record)
            if self._fh is not None:
                self._fh.write(
                    json.dumps(record, default=json_default) + "\n"
                )
                self._fh.flush()
        return record

    def write(self, path) -> None:
        """Dump every buffered record to ``path`` as JSON lines."""
        with self._lock:
            records = list(self.records)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, default=json_default) + "\n")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(records={len(self.records)}, path={self.path!r})"


class NullEventLog:
    """The disabled log: every method is a no-op."""

    enabled: bool = False
    records: Tuple = ()

    def emit(self, event: str, **fields: Any) -> None:
        pass

    def write(self, path) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Singleton used by the default (disabled) observability context.
NULL_LOG = NullEventLog()


def load_events(path) -> List[Dict[str, Any]]:
    """Parse a JSON-lines event log back into records (blank-line safe)."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def replay_outcomes(
    events: Iterable[Dict[str, Any]],
    *,
    event: str = "request_done",
    by: str = "tenant",
) -> Dict[Tuple[str, str], int]:
    """Fold a log back into the per-request outcome tally.

    Returns ``{(group, outcome): count}`` over every ``request_done``
    record — the exact shape of the ``serve_outcomes_total`` counter
    family, so a run's log replays into the same accounting its metrics
    reported (the acceptance property of the serving tier).
    """
    tally: Dict[Tuple[str, str], int] = {}
    for record in events:
        if record.get("event") != event:
            continue
        key = (str(record.get(by, "")), str(record.get("outcome", "")))
        tally[key] = tally.get(key, 0) + 1
    return tally
