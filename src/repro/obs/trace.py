"""Hierarchical span tracing with Chrome trace-event (Perfetto) export.

The paper's evaluation lives and dies by *seeing inside* the three-step
algorithm (Figures 10/14 are runtime breakdowns per step); a production
deployment additionally needs to see retries, fallbacks and chunked
re-execution batches.  A :class:`Tracer` records **spans** — named
begin/end intervals with attributes, nested like call frames — plus
instant markers and counter samples, and serialises everything as a
Chrome trace-event JSON document loadable in Perfetto or
``chrome://tracing``.

Design constraints honoured here:

* **zero-cost when disabled** — :data:`NULL_TRACER` returns one shared
  re-entrant no-op context manager from :meth:`NullTracer.span`, so a
  guarded call site costs a method call and nothing else;
* **deterministic structure** — span names, nesting, ordering and
  attributes depend only on the algorithm's decisions (deterministic
  under a seeded :class:`~repro.runtime.faults.FaultPlan`); only the
  timestamps vary run to run, and the ``clock`` parameter lets tests pin
  those too;
* **no upward imports** — this module depends on the standard library
  only, so every layer of the package may use it freely.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_PROCESS",
    "DEFAULT_THREAD",
]

#: Default virtual process/thread the host-side spans are laid on.
DEFAULT_PROCESS = "repro"
DEFAULT_THREAD = "pipeline"


@dataclass
class Span:
    """One completed begin/end interval.

    Attributes
    ----------
    name, cat:
        Span name (e.g. ``"step2"``) and category (``"step"``,
        ``"kernel"``, ``"resilience"``, ``"chunked"``, ``"summa"``...).
    start_s, end_s:
        Seconds since the tracer's epoch.
    depth:
        Nesting depth at begin time (0 = top level).
    seq:
        Begin-order sequence number (total order of span begins).
    parent_seq:
        ``seq`` of the enclosing span, or ``-1`` at top level.
    pid, tid:
        Virtual process/track the span is drawn on.
    args:
        Attributes attached at begin time (JSON-serialisable values).
    """

    name: str
    cat: str
    start_s: float
    end_s: float = 0.0
    depth: int = 0
    seq: int = 0
    parent_seq: int = -1
    pid: str = DEFAULT_PROCESS
    tid: str = DEFAULT_THREAD
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Wall-clock span length in seconds."""
        return max(self.end_s - self.start_s, 0.0)


@dataclass(frozen=True)
class TraceEvent:
    """A non-span event: instant marker (``ph="i"``) or counter sample
    (``ph="C"``)."""

    ph: str
    name: str
    cat: str
    ts_s: float
    pid: str
    tid: str
    args: Dict[str, Any]


class Tracer:
    """Records hierarchical spans and exports Chrome trace-event JSON.

    Parameters
    ----------
    clock:
        Monotonic time source in seconds (default
        :func:`time.perf_counter`).  Tests inject a fake incrementing
        clock to make timestamps — not just structure — deterministic.

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> t = Tracer(clock=lambda: float(next(ticks)))
    >>> with t.span("step1", cat="step", tiles=4):
    ...     with t.span("intersect"):
    ...         pass
    >>> [s.name for s in t.spans], [s.depth for s in t.spans]
    (['intersect', 'step1'], [1, 0])
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []  #: completed spans, in *end* order
        self.events: List[TraceEvent] = []
        self._stack: List[Span] = []
        self._seq = 0

    @property
    def epoch_s(self) -> float:
        """Absolute clock value of this tracer's zero point.

        Under the default :func:`time.perf_counter` clock this is a
        system-wide monotonic timestamp, which is what lets
        :func:`repro.obs.propagate.absorb_telemetry` re-base spans
        recorded by pool workers onto this tracer's timeline exactly.
        """
        return self._epoch

    # ------------------------------------------------------------- recording
    def _now(self) -> float:
        return self._clock() - self._epoch

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "phase",
        pid: str = DEFAULT_PROCESS,
        tid: str = DEFAULT_THREAD,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            name=name,
            cat=cat,
            start_s=self._now(),
            depth=len(self._stack),
            seq=self._seq,
            parent_seq=parent.seq if parent is not None else -1,
            pid=pid,
            tid=tid,
            args=dict(attrs),
        )
        self._seq += 1
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_s = self._now()
            self._stack.pop()
            self.spans.append(sp)

    def instant(self, name: str, cat: str = "event", **attrs: Any) -> None:
        """Record a zero-duration marker (faults, retries, selections)."""
        self.events.append(
            TraceEvent("i", name, cat, self._now(), DEFAULT_PROCESS, DEFAULT_THREAD, dict(attrs))
        )

    def counter(self, name: str, value: float, cat: str = "counter") -> None:
        """Record a counter sample (drawn as a stacked chart in Perfetto)."""
        self.events.append(
            TraceEvent(
                "C", name, cat, self._now(), DEFAULT_PROCESS, DEFAULT_THREAD, {name: value}
            )
        )

    def add_complete(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        pid: str,
        tid: str,
        cat: str = "gpu",
        **attrs: Any,
    ) -> None:
        """Add an externally-timed complete span (virtual GPU tracks).

        ``start_s`` is relative to the tracer's epoch; the GPU timeline
        helpers use this to lay modelled warp tasks onto virtual SM/slot
        tracks with times that come from the scheduler, not the clock.
        """
        sp = Span(
            name=name,
            cat=cat,
            start_s=start_s,
            end_s=start_s + max(duration_s, 0.0),
            depth=0,
            seq=self._seq,
            parent_seq=-1,
            pid=pid,
            tid=tid,
            args=dict(attrs),
        )
        self._seq += 1
        self.spans.append(sp)

    # ------------------------------------------------------------- queries
    @property
    def open_spans(self) -> Tuple[str, ...]:
        """Names of spans currently open (innermost last)."""
        return tuple(sp.name for sp in self._stack)

    def find(self, name: str) -> List[Span]:
        """All completed spans with the given name, in begin order."""
        return sorted((s for s in self.spans if s.name == name), key=lambda s: s.seq)

    def total_seconds(self, name: str) -> float:
        """Summed duration of all completed spans named ``name``."""
        return sum(s.duration_s for s in self.spans if s.name == name)

    # ------------------------------------------------------------- export
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Uses the JSON-object format (``{"traceEvents": [...]}``) with
        complete (``"X"``), instant (``"i"``), counter (``"C"``) and
        process/thread-name metadata (``"M"``) events.  Timestamps are
        microseconds since the tracer epoch, as the format requires.
        """
        from repro.obs.native import to_native

        events: List[Dict[str, Any]] = []
        tracks: Dict[Tuple[str, str], None] = {}
        for sp in sorted(self.spans, key=lambda s: (s.start_s, s.seq)):
            tracks.setdefault((sp.pid, sp.tid))
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.cat,
                    "ph": "X",
                    "ts": sp.start_s * 1e6,
                    "dur": sp.duration_s * 1e6,
                    "pid": sp.pid,
                    "tid": sp.tid,
                    # Coerce at export time: span attrs routinely pick up
                    # NumPy scalars (nnz counts, timings) and json.dump
                    # refuses the integer kinds.
                    "args": to_native(sp.args),
                }
            )
        for ev in self.events:
            tracks.setdefault((ev.pid, ev.tid))
            record: Dict[str, Any] = {
                "name": ev.name,
                "cat": ev.cat,
                "ph": ev.ph,
                "ts": ev.ts_s * 1e6,
                "pid": ev.pid,
                "tid": ev.tid,
                "args": to_native(ev.args),
            }
            if ev.ph == "i":
                record["s"] = "t"  # instant scope: thread
            events.append(record)
        meta: List[Dict[str, Any]] = []
        for pid, tid in tracks:
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": pid},
                }
            )
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tid},
                }
            )
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Serialise :meth:`to_chrome_trace` to ``path`` as JSON.

        Attribute values are coerced to native Python types first, and
        anything still non-serialisable degrades to its ``str()`` — a
        stray object attribute must never cost the whole trace.
        """
        from repro.obs.native import json_default

        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, default=json_default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(spans={len(self.spans)}, events={len(self.events)})"


class _NullSpan:
    """Shared re-entrant no-op context manager (one instance, ever)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    ``span()`` returns one shared context manager object so disabled
    tracing allocates nothing per call — the zero-overhead property the
    observability tests assert by counting calls on a subclass.
    """

    enabled: bool = False

    def span(self, name: str, cat: str = "phase", **attrs: Any):
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "event", **attrs: Any) -> None:
        pass

    def counter(self, name: str, value: float, cat: str = "counter") -> None:
        pass

    def add_complete(self, *args: Any, **kwargs: Any) -> None:
        pass


#: Singleton used by the default (disabled) observability context.
NULL_TRACER = NullTracer()
