"""Virtual SM/warp-slot tracks: modelled GPU kernels as a Perfetto timeline.

The GPU cost model list-schedules each kernel's warp tasks onto the
device's issue slots (:func:`repro.gpu.scheduler.schedule_tasks`).  That
schedule *is* a timeline: every task has a slot, a start and an end.
This module lays those tasks out as Chrome trace-event complete spans on
one virtual track per slot, under a per-device virtual process — open
the exported file in Perfetto and the paper's load-imbalance story
(§2.3: a few giant tasks pinning one slot while the rest idle) is
directly visible.

Kernels are placed back to back in estimate order, like the serialised
kernel launches of the CUDA implementation.  Only the first
``max_tracks`` slots are emitted (a *sampled* view — real devices have
thousands of resident warps and Perfetto has finite pixels); a
kernel-level summary span on the ``kernels`` track always covers the
full duration, so totals stay honest.  Kernels with more than
``max_tasks`` tasks get the summary span only.

The scheduler import happens inside the function so :mod:`repro.obs`
stays import-free of the rest of the package.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["emit_gpu_timeline"]

#: Virtual-track caps: Perfetto renders fine up to a few dozen tracks.
DEFAULT_MAX_TRACKS = 32
DEFAULT_MAX_TASKS = 100_000


def emit_gpu_timeline(
    tracer,
    estimate,
    device=None,
    t0_s: float = 0.0,
    max_tracks: int = DEFAULT_MAX_TRACKS,
    max_tasks: int = DEFAULT_MAX_TASKS,
) -> float:
    """Emit one modelled-GPU timeline for a cost-model estimate.

    Parameters
    ----------
    tracer:
        A live :class:`~repro.obs.trace.Tracer` (no-op tracers return
        immediately).
    estimate:
        A :class:`~repro.gpu.costmodel.GPUEstimate`; kernels carrying
        ``task_cycles`` get per-slot task spans, the rest only the
        kernel-level summary span.
    device:
        The :class:`~repro.gpu.device.DeviceModel`; defaults to
        ``estimate.device``.
    t0_s:
        Timeline origin in tracer-epoch seconds.
    max_tracks, max_tasks:
        Sampling caps (see module docstring).

    Returns
    -------
    float
        End time of the virtual timeline in tracer-epoch seconds.
    """
    if not getattr(tracer, "enabled", False):
        return t0_s
    from repro.gpu.scheduler import schedule_tasks

    device = device if device is not None else estimate.device
    pid = f"virtual-gpu ({device.name})"
    cursor = t0_s
    for kernel in estimate.kernels:
        dur = kernel.seconds
        tracer.add_complete(
            kernel.name,
            cursor,
            dur,
            pid=pid,
            tid="kernels",
            cat="gpu.kernel",
            bound=kernel.bound,
            compute_ms=kernel.compute_s * 1e3,
            memory_ms=kernel.memory_s * 1e3,
        )
        task_cycles = getattr(kernel, "task_cycles", None)
        if task_cycles is not None and 0 < len(task_cycles) <= max_tasks:
            sched = schedule_tasks(task_cycles, device.issue_slots)
            # Fit the scheduled (compute) portion inside the kernel span.
            scale = 1.0 / device.clock_hz
            if sched.makespan > 0:
                scale *= min(dur / (sched.makespan / device.clock_hz), 1.0)
            _emit_slot_tasks(tracer, kernel.name, sched, cursor, scale, pid, max_tracks)
        cursor += dur
    if estimate.malloc_s > 0:
        tracer.add_complete(
            "malloc",
            cursor,
            estimate.malloc_s,
            pid=pid,
            tid="kernels",
            cat="gpu.malloc",
        )
        cursor += estimate.malloc_s
    return cursor


def _emit_slot_tasks(
    tracer,
    kernel_name: str,
    sched,
    t0_s: float,
    seconds_per_cycle: float,
    pid: str,
    max_tracks: int,
    min_duration_s: Optional[float] = None,
) -> None:
    """Emit the per-slot task spans of one scheduled kernel."""
    width = len(str(max_tracks - 1))
    for slot, start_c, end_c in zip(sched.slot, sched.start, sched.end):
        if slot >= max_tracks:
            continue
        start_s = t0_s + float(start_c) * seconds_per_cycle
        dur_s = float(end_c - start_c) * seconds_per_cycle
        tracer.add_complete(
            f"{kernel_name}.task",
            start_s,
            dur_s,
            pid=pid,
            tid=f"slot {int(slot):0{width}d}",
            cat="gpu.task",
        )
