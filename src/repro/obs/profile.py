"""Always-on workload profiler: where the time and the work went.

The paper's performance story is driven by per-tile-row workload skew —
intermediate-product counts, the sparse-vs-dense accumulator choice, the
``tnnz`` threshold decision — and the ROADMAP's estimation-driven
adaptive planner needs exactly those signals joined with wall time
before it can exist.  The tracer shows *when* phases ran and the metrics
registry counts *how much* total work happened, but neither attributes
work to the tile-row bands it came from, and neither joins the cost
model's predictions against what was measured.

:class:`WorkloadProfiler` closes that gap.  It aggregates, per run:

* **per-phase** wall seconds (``step1``/``step2``/``step3``/``malloc``);
* **per-tile-row-band** workload: candidate tiles, matched pairs,
  intermediate products, ``nnz(C)``, and the accumulator path taken
  (tiles grouped into bands of :data:`DEFAULT_BAND_TILE_ROWS` tile
  rows, so hotspot reports name a row range, not a tile id);
* **tnnz decisions**: how many tiles went sparse vs dense per threshold;
* **calibration samples**: one record per
  :func:`repro.gpu.costmodel.estimate_run` call joining the predicted
  per-kernel seconds against the run's measured phase seconds and its
  compression rate (``products / nnz(C)``) — the raw material of
  :mod:`repro.analysis.calibration`;
* **per-shard** records appended when worker payloads are absorbed.

Everything serialises into a schema-versioned ``repro.profile/1`` JSON
artifact (:meth:`WorkloadProfiler.to_dict`), coerced through
:func:`repro.obs.native.to_native` so ``json.dumps`` needs no custom
default.

**Merging.**  The profiler state is additive: pool workers profile
locally, ship a plain-dict payload inside
:class:`~repro.obs.propagate.WorkerTelemetry`, and the coordinator
absorbs it (:meth:`WorkloadProfiler.absorb_payload`).  Because tile row
``i`` of ``C`` depends only on tile row ``i`` of ``A``, the per-band
counts of a sharded run sum to the serial run's exactly —
:meth:`workload` exposes the deterministic sub-document the
spawn-boundary tests compare byte for byte.  Shard-local tile rows are
rebased onto the global row space via the ambient offset
(:func:`profile_row_offset` / :func:`current_row_offset`), which the
engines thread through :class:`~repro.obs.propagate.TraceContext`.

**Cost.**  Recording is O(candidate tiles) NumPy reductions per run —
the same order as the existing metrics recording — and the disabled
path is :data:`NULL_PROFILER`, whose methods are no-ops, so the
observability overhead bench's <5 % bound holds with the profiler live
(``benchmarks/bench_ext_observability.py``).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.obs.native import to_native

__all__ = [
    "PROFILE_SCHEMA",
    "DEFAULT_BAND_TILE_ROWS",
    "WorkloadProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "profile_row_offset",
    "current_row_offset",
    "validate_profile",
    "write_profile",
    "load_profile",
    "render_profile",
]

#: Version tag of the profile artifact; bump on incompatible changes.
PROFILE_SCHEMA = "repro.profile/1"

#: Tile rows per attribution band (4 tile rows = 64 matrix rows at the
#: paper's 16x16 tiles) — coarse enough that artifacts stay small on the
#: representative suite, fine enough to localise a hotspot.
DEFAULT_BAND_TILE_ROWS = 4

_BAND_COUNT_KEYS = (
    "tiles",
    "pairs",
    "products",
    "nnz_c",
    "sparse_tiles",
    "dense_tiles",
)

_TOTAL_KEYS = (
    "products",
    "flops",
    "nnz_c",
    "num_c_tiles",
    "pairs",
    "sparse_tiles",
    "dense_tiles",
)


class _RowOffset(threading.local):
    """Ambient tile-row offset of the work running on this thread."""

    def __init__(self) -> None:
        self.value = 0


_ROW_OFFSET = _RowOffset()


def current_row_offset() -> int:
    """The global tile-row index that this thread's local row 0 maps to.

    ``0`` outside any :func:`profile_row_offset` block — whole-matrix
    runs attribute bands directly.
    """
    return _ROW_OFFSET.value


@contextmanager
def profile_row_offset(offset: int) -> Iterator[None]:
    """Rebase band attribution for the ``with`` block.

    The chunked and sharded engines slice ``A``'s tile rows into
    0-based sub-matrices; wrapping each slice's execution in its global
    start row keeps the profile's bands in whole-matrix coordinates, so
    a sharded run's bands sum to the serial run's.
    """
    prev = _ROW_OFFSET.value
    _ROW_OFFSET.value = int(offset)
    try:
        yield
    finally:
        _ROW_OFFSET.value = prev


class WorkloadProfiler:
    """Additive aggregation of one run's (or one service's) workload.

    Parameters
    ----------
    band_tile_rows:
        Tile rows per attribution band.  Must match across every
        profiler whose state is merged (enforced by
        :meth:`absorb_payload`).
    """

    enabled: bool = True

    def __init__(self, band_tile_rows: int = DEFAULT_BAND_TILE_ROWS) -> None:
        if band_tile_rows < 1:
            raise ValueError(f"band_tile_rows must be >= 1, got {band_tile_rows}")
        self.band_tile_rows = int(band_tile_rows)
        self.runs = 0
        self.phases: Dict[str, Dict[str, float]] = {}
        self.bands: Dict[int, Dict[str, int]] = {}
        self.totals: Dict[str, int] = {k: 0 for k in _TOTAL_KEYS}
        self.tnnz: Dict[str, Dict[str, int]] = {}
        self.shards: List[Dict[str, Any]] = []
        self.calibration: List[Dict[str, Any]] = []
        self.plans: List[Dict[str, Any]] = []

    # ------------------------------------------------------------ recording
    def record_run(self, stats: Dict[str, Any], timer, row_offset: int = 0) -> None:
        """Fold one ``tile_spgemm`` run's stats and phase timer in.

        ``row_offset`` rebases the run's local tile rows onto the global
        row space (shard/batch slices); whole-matrix runs pass 0.
        """
        self.runs += 1
        for name, seconds in timer.seconds.items():
            ph = self.phases.setdefault(name, {"seconds": 0.0, "count": 0})
            ph["seconds"] += float(seconds)
            ph["count"] += int(timer.count(name))

        totals = self.totals
        totals["products"] += int(stats.get("num_products", 0))
        totals["flops"] += int(stats.get("flops", 0))
        totals["nnz_c"] += int(stats.get("nnz_c", 0))
        totals["num_c_tiles"] += int(stats.get("num_c_tiles", 0))
        sparse_tiles = int(stats.get("sparse_tiles", 0))
        dense_tiles = int(stats.get("dense_tiles", 0))
        totals["sparse_tiles"] += sparse_tiles
        totals["dense_tiles"] += dense_tiles

        threshold = stats.get("tnnz")
        if threshold is not None:
            decision = self.tnnz.setdefault(
                str(int(threshold)), {"sparse_tiles": 0, "dense_tiles": 0}
            )
            decision["sparse_tiles"] += sparse_tiles
            decision["dense_tiles"] += dense_tiles

        tile_rows = stats.get("c_tilerow")
        if tile_rows is None:
            return
        tile_rows = np.asarray(tile_rows, dtype=np.int64) + int(row_offset)
        if tile_rows.size == 0:
            return
        band_ids = tile_rows // self.band_tile_rows
        minlength = int(band_ids.max()) + 1
        per_band = {
            "tiles": np.bincount(band_ids, minlength=minlength),
            "pairs": np.bincount(
                band_ids,
                weights=np.asarray(stats["pairs_per_tile"], dtype=np.float64),
                minlength=minlength,
            ),
            "products": np.bincount(
                band_ids,
                weights=np.asarray(stats["products_per_tile"], dtype=np.float64),
                minlength=minlength,
            ),
            "nnz_c": np.bincount(
                band_ids,
                weights=np.asarray(stats["tile_nnz_counts"], dtype=np.float64),
                minlength=minlength,
            ),
            "dense_tiles": np.bincount(
                band_ids,
                weights=np.asarray(stats["tile_use_dense"], dtype=np.float64),
                minlength=minlength,
            ),
        }
        per_band["sparse_tiles"] = per_band["tiles"] - per_band["dense_tiles"]
        totals["pairs"] += int(per_band["pairs"].sum())
        for band in np.flatnonzero(per_band["tiles"]):
            counts = self.bands.setdefault(
                int(band), {k: 0 for k in _BAND_COUNT_KEYS}
            )
            for key in _BAND_COUNT_KEYS:
                counts[key] += int(per_band[key][band])

    def record_estimate(
        self,
        estimate,
        family: str,
        timer=None,
        stats: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one cost-model prediction joined with measured actuals.

        Called by :func:`repro.gpu.costmodel.estimate_run` for every
        estimate computed inside a profiling context; ``timer``/``stats``
        come from the measured run the estimate priced.
        """
        predicted_s = float(estimate.seconds)
        sample: Dict[str, Any] = {
            "family": str(family),
            "method": str(estimate.method),
            "device": str(estimate.device.name),
            "oom": bool(estimate.oom),
            "predicted_s": predicted_s if np.isfinite(predicted_s) else -1.0,
            "predicted_phases": {
                str(k): float(v) for k, v in estimate.breakdown().items()
            },
            "flops": int(estimate.flops),
        }
        if timer is not None:
            sample["measured_s"] = float(timer.total)
            sample["measured_phases"] = {
                str(k): float(v) for k, v in timer.seconds.items()
            }
        if stats is not None:
            products = int(stats.get("num_products", 0))
            nnz_c = int(stats.get("nnz_c", 0))
            sample["products"] = products
            sample["nnz_c"] = nnz_c
            sample["compression"] = products / nnz_c if nnz_c > 0 else 0.0
        self.calibration.append(sample)

    def record_plan(self, plan: Dict[str, Any]) -> None:
        """Record one :class:`~repro.runtime.planner.ExecutionPlan` dict.

        Called by the parallel engine when it runs under a plan, so the
        profile artifact can attribute a run's shape (workers, shard
        boundaries, tnnz, backend) to the planner's decisions.
        """
        self.plans.append(to_native(dict(plan)))

    # ------------------------------------------------------------ merging
    def to_payload(self) -> Dict[str, Any]:
        """The mergeable state as a plain (picklable, JSON-able) dict.

        What :func:`repro.obs.propagate.run_with_worker_obs` ships back
        inside :class:`~repro.obs.propagate.WorkerTelemetry`.
        """
        return to_native(
            {
                "band_tile_rows": self.band_tile_rows,
                "runs": self.runs,
                "phases": {k: dict(v) for k, v in self.phases.items()},
                "bands": {str(k): dict(v) for k, v in self.bands.items()},
                "totals": dict(self.totals),
                "tnnz": {k: dict(v) for k, v in self.tnnz.items()},
                "calibration": list(self.calibration),
                "plans": list(self.plans),
            }
        )

    def absorb_payload(
        self, payload: Optional[Dict[str, Any]], worker: str = ""
    ) -> None:
        """Merge a worker's :meth:`to_payload` dict in (additively).

        ``None`` and empty payloads (``runs == 0`` with no calibration
        samples) are no-ops.  A ``worker`` label appends a per-shard
        record so the artifact keeps the pool's shape.
        """
        if not payload:
            return
        if (
            not payload.get("runs")
            and not payload.get("calibration")
            and not payload.get("plans")
        ):
            return
        if int(payload.get("band_tile_rows", self.band_tile_rows)) != self.band_tile_rows:
            raise ValueError(
                "cannot merge profiles with different band widths: "
                f"{payload.get('band_tile_rows')} vs {self.band_tile_rows}"
            )
        self.runs += int(payload.get("runs", 0))
        for name, ph in payload.get("phases", {}).items():
            mine = self.phases.setdefault(name, {"seconds": 0.0, "count": 0})
            mine["seconds"] += float(ph.get("seconds", 0.0))
            mine["count"] += int(ph.get("count", 0))
        for band, counts in payload.get("bands", {}).items():
            mine = self.bands.setdefault(
                int(band), {k: 0 for k in _BAND_COUNT_KEYS}
            )
            for key in _BAND_COUNT_KEYS:
                mine[key] += int(counts.get(key, 0))
        for key, value in payload.get("totals", {}).items():
            self.totals[key] = self.totals.get(key, 0) + int(value)
        for threshold, decision in payload.get("tnnz", {}).items():
            mine = self.tnnz.setdefault(
                str(threshold), {"sparse_tiles": 0, "dense_tiles": 0}
            )
            for key, value in decision.items():
                mine[key] = mine.get(key, 0) + int(value)
        self.calibration.extend(payload.get("calibration", []))
        self.plans.extend(payload.get("plans", []))
        if worker:
            self.shards.append(
                {
                    "worker": str(worker),
                    "runs": int(payload.get("runs", 0)),
                    "seconds": float(
                        sum(
                            ph.get("seconds", 0.0)
                            for ph in payload.get("phases", {}).values()
                        )
                    ),
                    "products": int(payload.get("totals", {}).get("products", 0)),
                }
            )

    def merge(self, other: "WorkloadProfiler", worker: str = "") -> None:
        """Fold another profiler's state into this one."""
        self.absorb_payload(other.to_payload(), worker=worker)

    # ------------------------------------------------------------- export
    def _band_rows(self) -> List[Dict[str, Any]]:
        width = self.band_tile_rows
        return [
            {
                "band": band,
                "tile_rows": [band * width, (band + 1) * width],
                **{k: counts[k] for k in _BAND_COUNT_KEYS},
            }
            for band, counts in sorted(self.bands.items())
        ]

    def workload(self) -> Dict[str, Any]:
        """The deterministic sub-document: counts only, no timings.

        Depends only on the inputs and the algorithm's decisions — the
        shard profiles of a parallel run sum to the serial run's
        workload byte for byte (``json.dumps(..., sort_keys=True)``),
        which the spawn-boundary propagation tests assert.
        """
        return to_native(
            {
                "schema": PROFILE_SCHEMA,
                "band_tile_rows": self.band_tile_rows,
                "totals": dict(self.totals),
                "tnnz": {k: dict(v) for k, v in sorted(self.tnnz.items())},
                "bands": self._band_rows(),
            }
        )

    def to_dict(self, include_cache: bool = True) -> Dict[str, Any]:
        """The full ``repro.profile/1`` artifact as a plain dict.

        ``include_cache`` snapshots the process-wide
        :class:`~repro.runtime.tilecache.TileCache` counters at call
        time (skipped for per-series bench embedding, where the global
        cache would smear across series).
        """
        doc: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "band_tile_rows": self.band_tile_rows,
            "runs": self.runs,
            "phases": {k: dict(v) for k, v in self.phases.items()},
            "totals": dict(self.totals),
            "tnnz": {k: dict(v) for k, v in sorted(self.tnnz.items())},
            "bands": self._band_rows(),
            "shards": list(self.shards),
            "calibration": list(self.calibration),
            "plans": list(self.plans),
        }
        if include_cache:
            from repro.runtime.tilecache import get_tile_cache

            doc["cache"] = get_tile_cache().stats()
        return to_native(doc)

    def summary(self) -> Dict[str, Any]:
        """A small live view for ``/varz``: totals, phases, top band."""
        top = None
        if self.bands:
            band, counts = max(self.bands.items(), key=lambda kv: kv[1]["products"])
            width = self.band_tile_rows
            top = {
                "tile_rows": [band * width, (band + 1) * width],
                "products": counts["products"],
                "nnz_c": counts["nnz_c"],
            }
        runs = max(self.runs, 1)
        return to_native(
            {
                "runs": self.runs,
                "phase_seconds": {
                    k: v["seconds"] for k, v in self.phases.items()
                },
                "products": self.totals["products"],
                "nnz_c": self.totals["nnz_c"],
                "products_per_run": self.totals["products"] / runs,
                "top_band": top,
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadProfiler(runs={self.runs}, bands={len(self.bands)}, "
            f"calibration={len(self.calibration)})"
        )


class NullProfiler:
    """The disabled profiler: every method is a no-op.

    One shared instance (:data:`NULL_PROFILER`) backs the default
    observability context, so unprofiled runs pay a truthiness check on
    ``enabled`` and nothing else.
    """

    enabled: bool = False

    def record_run(self, stats, timer, row_offset: int = 0) -> None:
        pass

    def record_estimate(self, estimate, family, timer=None, stats=None) -> None:
        pass

    def record_plan(self, plan) -> None:
        pass

    def to_payload(self) -> None:
        return None

    def absorb_payload(self, payload, worker: str = "") -> None:
        pass

    def merge(self, other, worker: str = "") -> None:
        pass

    def summary(self) -> Dict[str, Any]:
        return {}


#: Singleton used by the default (disabled) observability context.
NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# Artifact I/O and validation
# ----------------------------------------------------------------------
def _fail(path: str, message: str):
    from repro.errors import InvalidInputError

    raise InvalidInputError(f"invalid profile artifact at {path}: {message}")


def _check_number(value: Any, path: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, f"expected a number, got {value!r}")


def validate_profile(doc: Any) -> Dict[str, Any]:
    """Check ``doc`` against the ``repro.profile/1`` shape; returns it.

    Raises :class:`~repro.errors.InvalidInputError` naming the first
    offending path, mirroring the bench schema's contract.
    """
    if not isinstance(doc, dict):
        _fail("$", "artifact must be a JSON object")
    if doc.get("schema") != PROFILE_SCHEMA:
        _fail("$.schema", f"expected {PROFILE_SCHEMA!r}, got {doc.get('schema')!r}")
    _check_number(doc.get("band_tile_rows"), "$.band_tile_rows")
    _check_number(doc.get("runs"), "$.runs")
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        _fail("$.phases", "expected an object")
    for name, ph in phases.items():
        if not isinstance(ph, dict):
            _fail(f"$.phases[{name!r}]", "expected an object")
        for key in ("seconds", "count"):
            _check_number(ph.get(key), f"$.phases[{name!r}].{key}")
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        _fail("$.totals", "expected an object")
    for key in _TOTAL_KEYS:
        _check_number(totals.get(key), f"$.totals.{key}")
    bands = doc.get("bands")
    if not isinstance(bands, list):
        _fail("$.bands", "expected a list")
    for i, band in enumerate(bands):
        at = f"$.bands[{i}]"
        if not isinstance(band, dict):
            _fail(at, "expected an object")
        _check_number(band.get("band"), f"{at}.band")
        rows = band.get("tile_rows")
        if not (isinstance(rows, list) and len(rows) == 2):
            _fail(f"{at}.tile_rows", "expected a [start, end) pair")
        for key in _BAND_COUNT_KEYS:
            _check_number(band.get(key), f"{at}.{key}")
    calibration = doc.get("calibration")
    if not isinstance(calibration, list):
        _fail("$.calibration", "expected a list")
    for i, sample in enumerate(calibration):
        at = f"$.calibration[{i}]"
        if not isinstance(sample, dict):
            _fail(at, "expected an object")
        for key in ("family", "method", "device"):
            if not isinstance(sample.get(key), str) or not sample[key]:
                _fail(f"{at}.{key}", "expected a non-empty string")
        _check_number(sample.get("predicted_s"), f"{at}.predicted_s")
    cache = doc.get("cache")
    if cache is not None:
        if not isinstance(cache, dict):
            _fail("$.cache", "expected an object")
        for key in ("hits", "misses", "evictions", "resident_bytes"):
            _check_number(cache.get(key, 0), f"$.cache.{key}")
    plans = doc.get("plans")
    if plans is not None:
        if not isinstance(plans, list):
            _fail("$.plans", "expected a list")
        for i, plan in enumerate(plans):
            at = f"$.plans[{i}]"
            if not isinstance(plan, dict):
                _fail(at, "expected an object")
            for key in ("mode", "executor", "backend"):
                if not isinstance(plan.get(key), str) or not plan[key]:
                    _fail(f"{at}.{key}", "expected a non-empty string")
            for key in ("workers", "shards", "tnnz"):
                _check_number(plan.get(key), f"{at}.{key}")
            bounds = plan.get("bounds")
            if not isinstance(bounds, list) or len(bounds) < 2:
                _fail(f"{at}.bounds", "expected a list of >= 2 boundaries")
    return doc


def write_profile(doc: Dict[str, Any], path) -> None:
    """Validate and write one profile artifact as indented JSON.

    Serialisation needs no custom default: the profiler coerces through
    :func:`~repro.obs.native.to_native` at every export seam.
    """
    validate_profile(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_profile(path) -> Dict[str, Any]:
    """Read and validate one ``repro.profile/1`` artifact."""
    from repro.errors import InvalidInputError

    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise InvalidInputError(
                f"profile artifact {path} is not valid JSON: {exc}"
            ) from exc
    return validate_profile(doc)


def render_profile(doc: Dict[str, Any], top: int = 10) -> str:
    """Human-readable hotspot report: phases, top tile-row bands, cache."""
    lines: List[str] = []
    totals = doc.get("totals", {})
    lines.append(
        f"workload profile ({doc.get('runs', 0)} runs): "
        f"{totals.get('products', 0)} products -> {totals.get('nnz_c', 0)} nnz(C) "
        f"across {totals.get('num_c_tiles', 0)} tiles "
        f"({totals.get('sparse_tiles', 0)} sparse / {totals.get('dense_tiles', 0)} dense)"
    )
    phases = doc.get("phases", {})
    if phases:
        total_s = sum(ph.get("seconds", 0.0) for ph in phases.values()) or 1.0
        lines.append(f"{'phase':<20} {'seconds':>12} {'share':>7} {'entries':>8}")
        for name, ph in sorted(
            phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
        ):
            seconds = ph.get("seconds", 0.0)
            lines.append(
                f"{name:<20} {seconds:>12.6f} {seconds / total_s:>6.1%} "
                f"{int(ph.get('count', 0)):>8}"
            )
    bands = sorted(
        doc.get("bands", []), key=lambda b: -int(b.get("products", 0))
    )[: max(int(top), 0)]
    if bands:
        lines.append("")
        lines.append(
            f"top {len(bands)} tile-row bands by intermediate products "
            f"(band = {doc.get('band_tile_rows', '?')} tile rows):"
        )
        lines.append(
            f"{'tile rows':<16} {'tiles':>7} {'pairs':>9} {'products':>10} "
            f"{'nnz(C)':>9} {'dense':>6}"
        )
        for band in bands:
            r0, r1 = band.get("tile_rows", [0, 0])
            lines.append(
                f"[{r0:>5}, {r1:>5}) {int(band.get('tiles', 0)):>7} "
                f"{int(band.get('pairs', 0)):>9} {int(band.get('products', 0)):>10} "
                f"{int(band.get('nnz_c', 0)):>9} {int(band.get('dense_tiles', 0)):>6}"
            )
    shards = doc.get("shards", [])
    if shards:
        lines.append("")
        lines.append(f"shards absorbed: {len(shards)}")
        for shard in shards:
            lines.append(
                f"  {shard.get('worker', '?'):<24} runs={shard.get('runs', 0)} "
                f"products={shard.get('products', 0)} "
                f"seconds={shard.get('seconds', 0.0):.6f}"
            )
    cache = doc.get("cache")
    if cache:
        lines.append("")
        lines.append(
            f"tile cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses / {cache.get('evictions', 0)} "
            f"evictions, {cache.get('size', 0)} entries "
            f"({cache.get('resident_bytes', 0)} B resident)"
        )
    plans = doc.get("plans", [])
    if plans:
        lines.append("")
        lines.append(f"execution plans recorded: {len(plans)}")
        for plan in plans[-max(int(top), 1):]:
            est = plan.get("estimate", {})
            lines.append(
                f"  {plan.get('mode', '?'):<8} workers={plan.get('workers', '?')} "
                f"executor={plan.get('executor', '?')} "
                f"shards={plan.get('shards', '?')} tnnz={plan.get('tnnz', '?')} "
                f"backend={plan.get('backend', '?')} "
                f"(est {est.get('products', '?')} products, "
                f"band {est.get('band', '?')})"
            )
    samples = doc.get("calibration", [])
    if samples:
        families = sorted({s.get("family", "?") for s in samples})
        lines.append("")
        lines.append(
            f"calibration samples: {len(samples)} across families "
            f"{', '.join(families)} (run `repro obs calibrate` for the "
            "prediction-error report)"
        )
    return "\n".join(lines)
