"""Ambient observability context: which tracer/metrics a run reports to.

Mirrors :mod:`repro.runtime.context`: the tracer and metrics registry
must reach code many frames below the caller who configured them
(``AllocationTracker`` events, baseline kernels, SUMMA broadcasts), so a
run is wrapped in :func:`obs_context` and instrumented call sites consult
:func:`current_obs`.

Outside any context, :func:`current_obs` returns :data:`NULL_OBS` — a
shared disabled context whose tracer and metrics are the no-op
singletons, so un-instrumented runs pay one list lookup per site and
nothing else.  Contexts nest; fields left ``None`` inherit from the
enclosing context.

Like the execution context, the stack is **per-thread**
(:class:`threading.local`): pool workers of the sharded parallel engine
start with an empty stack and therefore report to :data:`NULL_OBS` —
a :class:`~repro.obs.trace.Tracer` is not safe to drive from several
threads, so the engine records per-shard spans and merged metrics from
the coordinating thread instead.  The module imports nothing from the
rest of the package, so every layer can depend on it without cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsContext",
    "NULL_OBS",
    "obs_context",
    "current_obs",
    "make_obs",
]


@dataclass(frozen=True)
class ObsContext:
    """The observability sinks of one run.

    Attributes
    ----------
    tracer:
        A :class:`~repro.obs.trace.Tracer` or the no-op
        :data:`~repro.obs.trace.NULL_TRACER`.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` or the no-op
        :data:`~repro.obs.metrics.NULL_METRICS`.
    enabled:
        True when at least one sink is live.  Guarded call sites check
        this before computing attribute/metric values so disabled runs
        skip even the arithmetic.
    """

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS
    enabled: bool = False


#: The default, disabled context returned outside any ``obs_context``.
NULL_OBS = ObsContext()

class _ThreadStack(threading.local):
    """Per-thread context stack; every thread starts empty."""

    def __init__(self) -> None:
        self.items: List[ObsContext] = []


_STACK = _ThreadStack()


def current_obs() -> ObsContext:
    """The innermost active context of this thread, or :data:`NULL_OBS`."""
    items = _STACK.items
    return items[-1] if items else NULL_OBS


def make_obs(trace: bool = True, metrics: bool = True, clock=None) -> ObsContext:
    """Build an enabled context with fresh sinks.

    Parameters
    ----------
    trace, metrics:
        Which sinks to enable; a disabled sink stays the no-op singleton.
    clock:
        Optional deterministic clock forwarded to the tracer.
    """
    tracer = (Tracer(clock=clock) if clock is not None else Tracer()) if trace else NULL_TRACER
    registry = MetricsRegistry() if metrics else NULL_METRICS
    return ObsContext(tracer=tracer, metrics=registry, enabled=trace or metrics)


@contextmanager
def obs_context(
    tracer: Optional[object] = None,
    metrics: Optional[object] = None,
) -> Iterator[ObsContext]:
    """Activate an observability context for the ``with`` block.

    Fields left ``None`` inherit from the enclosing context (the no-op
    singletons at top level), so a library layer can add a metrics
    registry without disturbing an outer tracer.
    """
    parent = current_obs()
    if tracer is None:
        tracer = parent.tracer
    if metrics is None:
        metrics = parent.metrics
    enabled = not isinstance(tracer, NullTracer) or not isinstance(metrics, NullMetrics)
    ctx = ObsContext(tracer=tracer, metrics=metrics, enabled=enabled)
    _STACK.items.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.items.pop()
