"""Ambient observability context: which tracer/metrics a run reports to.

Mirrors :mod:`repro.runtime.context`: the tracer and metrics registry
must reach code many frames below the caller who configured them
(``AllocationTracker`` events, baseline kernels, SUMMA broadcasts), so a
run is wrapped in :func:`obs_context` and instrumented call sites consult
:func:`current_obs`.

Outside any context, :func:`current_obs` returns :data:`NULL_OBS` — a
shared disabled context whose tracer, metrics and event log are the
no-op singletons, so un-instrumented runs pay one list lookup per site
and nothing else.  Contexts nest; fields left ``None`` inherit from the
enclosing context.

Like the execution context, the stack is **per-thread**
(:class:`threading.local`): pool workers of the sharded parallel engine
start with an empty stack and therefore report to :data:`NULL_OBS` —
a :class:`~repro.obs.trace.Tracer` is not safe to drive from several
threads.  Cross-boundary attribution is handled one level up: the
engines ship a :class:`~repro.obs.propagate.TraceContext` to each
worker, the worker records spans into a *local* tracer under
:func:`~repro.obs.propagate.run_with_worker_obs`, and the coordinator
merges the shipped telemetry back
(:func:`~repro.obs.propagate.absorb_telemetry`).  The ambient
``trace_ctx`` field carries the propagated identity so nested engines
keep attributing work to the request that caused it.

The module imports nothing from the rest of the package (beyond the
sibling sink modules), so every layer can depend on it without cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.obs.log import NULL_LOG, EventLog, NullEventLog
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.profile import NULL_PROFILER, NullProfiler, WorkloadProfiler
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsContext",
    "NULL_OBS",
    "obs_context",
    "current_obs",
    "make_obs",
]


@dataclass(frozen=True)
class ObsContext:
    """The observability sinks of one run.

    Attributes
    ----------
    tracer:
        A :class:`~repro.obs.trace.Tracer` or the no-op
        :data:`~repro.obs.trace.NULL_TRACER`.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` or the no-op
        :data:`~repro.obs.metrics.NULL_METRICS`.
    log:
        A structured :class:`~repro.obs.log.EventLog` or the no-op
        :data:`~repro.obs.log.NULL_LOG`.
    profile:
        A :class:`~repro.obs.profile.WorkloadProfiler` or the no-op
        :data:`~repro.obs.profile.NULL_PROFILER`.
    trace_ctx:
        The propagated :class:`~repro.obs.propagate.TraceContext` this
        work runs under (``None`` at top level).  Engines that fan work
        out to pools consult this so shards stay attributed to the
        originating request across thread/process boundaries.
    enabled:
        True when at least one sink is live.  Guarded call sites check
        this before computing attribute/metric values so disabled runs
        skip even the arithmetic.
    """

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS
    log: object = NULL_LOG
    profile: object = NULL_PROFILER
    trace_ctx: Optional[object] = None
    enabled: bool = False


#: The default, disabled context returned outside any ``obs_context``.
NULL_OBS = ObsContext()

class _ThreadStack(threading.local):
    """Per-thread context stack; every thread starts empty."""

    def __init__(self) -> None:
        self.items: List[ObsContext] = []


_STACK = _ThreadStack()


def current_obs() -> ObsContext:
    """The innermost active context of this thread, or :data:`NULL_OBS`."""
    items = _STACK.items
    return items[-1] if items else NULL_OBS


def make_obs(
    trace: bool = True,
    metrics: bool = True,
    log: bool = False,
    profile: bool = True,
    clock=None,
    log_path=None,
) -> ObsContext:
    """Build an enabled context with fresh sinks.

    Parameters
    ----------
    trace, metrics, log, profile:
        Which sinks to enable; a disabled sink stays the no-op
        singleton.  The event log defaults off — it is the serving
        tier's sink and pure-library runs rarely want it.  The workload
        profiler defaults **on**: it is the always-on substrate of the
        ``obs profile`` / ``obs calibrate`` reports and its recording
        cost is covered by the <5 % overhead bound.
    clock:
        Optional deterministic clock forwarded to the tracer.
    log_path:
        Optional JSON-lines file the event log streams into (implies
        ``log=True``).
    """
    tracer = (Tracer(clock=clock) if clock is not None else Tracer()) if trace else NULL_TRACER
    registry = MetricsRegistry() if metrics else NULL_METRICS
    event_log = (
        EventLog(path=log_path) if (log or log_path is not None) else NULL_LOG
    )
    profiler = WorkloadProfiler() if profile else NULL_PROFILER
    enabled = trace or metrics or event_log.enabled or profile
    return ObsContext(
        tracer=tracer,
        metrics=registry,
        log=event_log,
        profile=profiler,
        enabled=enabled,
    )


def _is_live(sink) -> bool:
    return not isinstance(
        sink, (NullTracer, NullMetrics, NullEventLog, NullProfiler)
    )


@contextmanager
def obs_context(
    tracer: Optional[object] = None,
    metrics: Optional[object] = None,
    log: Optional[object] = None,
    profile: Optional[object] = None,
    trace_ctx: Optional[object] = None,
) -> Iterator[ObsContext]:
    """Activate an observability context for the ``with`` block.

    Fields left ``None`` inherit from the enclosing context (the no-op
    singletons at top level), so a library layer can add a metrics
    registry without disturbing an outer tracer.  ``trace_ctx`` likewise
    inherits, so a propagated request identity survives nested
    ``obs_context`` entries on the same thread.
    """
    parent = current_obs()
    if tracer is None:
        tracer = parent.tracer
    if metrics is None:
        metrics = parent.metrics
    if log is None:
        log = parent.log
    if profile is None:
        profile = parent.profile
    if trace_ctx is None:
        trace_ctx = parent.trace_ctx
    enabled = (
        _is_live(tracer) or _is_live(metrics) or _is_live(log) or _is_live(profile)
    )
    ctx = ObsContext(
        tracer=tracer,
        metrics=metrics,
        log=log,
        profile=profile,
        trace_ctx=trace_ctx,
        enabled=enabled,
    )
    _STACK.items.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.items.pop()
