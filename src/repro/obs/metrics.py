"""Counters, gauges and histograms for the algorithm's decision points.

The cost model and the paper's figures are driven by *counts*: tile-pair
intersections, AtomicOr/AtomicAdd scatter ops, sparse-vs-dense
accumulator selections, allocation bytes, injected faults and retries.  A
:class:`MetricsRegistry` collects those as named metrics with optional
labels, offers a deterministic :meth:`~MetricsRegistry.snapshot` (plain
dicts with sorted keys — byte-identical across runs whose event stream is
deterministic, e.g. under a seeded
:class:`~repro.runtime.faults.FaultPlan`), and renders the Prometheus
text exposition format for scraping/diffing.

Like :mod:`repro.obs.trace`, this module imports only the standard
library, and the :data:`NULL_METRICS` singleton makes disabled metrics a
pure no-op.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: nnz-per-16x16-tile resolution
#: (the adaptive-accumulator threshold 192 sits on a boundary on purpose).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 4, 16, 48, 96, 144, 192, 224, 256)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and line-feed are the three characters the
    format requires escaping inside quoted label values; anything else
    passes through verbatim.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A registry of counters, gauges and histograms.

    All update methods take the metric name plus free-form keyword labels
    (``metrics.inc("faults_injected_total", error="oom", site="alloc")``).
    Metric kinds are tracked per name; using one name as two kinds raises.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        self._hists: Dict[Tuple[str, _LabelKey], Dict[str, Any]] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------- updates
    def _check_kind(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ValueError(f"metric {name!r} already registered as a {seen}")

    def describe(self, name: str, help_text: str) -> None:
        """Attach a HELP string rendered in the Prometheus export."""
        self._help[name] = help_text

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (value={value})")
        self._check_kind(name, "counter")
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value``."""
        self._check_kind(name, "gauge")
        self._gauges[(name, _label_key(labels))] = value

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Raise gauge ``name`` to ``value`` if larger (peak tracking)."""
        self._check_kind(name, "gauge")
        key = (name, _label_key(labels))
        if value > self._gauges.get(key, float("-inf")):
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Record one observation into histogram ``name``."""
        self.observe_many(name, (value,), buckets=buckets, **labels)

    def observe_many(
        self,
        name: str,
        values: Iterable[float],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Record a batch of observations (one pass; array-friendly)."""
        self._check_kind(name, "histogram")
        key = (name, _label_key(labels))
        hist = self._hists.get(key)
        if hist is None:
            hist = {
                "buckets": tuple(float(b) for b in buckets),
                "counts": [0] * (len(buckets) + 1),  # +inf bucket last
                "sum": 0.0,
                "count": 0,
            }
            self._hists[key] = hist
        bounds = hist["buckets"]
        counts: List[int] = hist["counts"]
        for v in values:
            v = float(v)
            counts[bisect.bisect_left(bounds, v)] += 1
            hist["sum"] += v
            hist["count"] += 1

    # ------------------------------------------------------------- queries
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        """Current gauge value, or ``None`` if never set."""
        return self._gauges.get((name, _label_key(labels)))

    def counter_items(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Every counter as ``(name, labels, value)`` triples.

        The shape worker-telemetry shipping and the ``/varz`` endpoint
        want: plain data, labels as a dict, values as native floats.
        """
        return [
            (n, dict(lk), float(v))
            for (n, lk), v in sorted(self._counters.items())
        ]

    def counter_samples(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        """All label sets of counter ``name`` with their values."""
        return [
            (dict(lk), float(v))
            for (n, lk), v in sorted(self._counters.items())
            if n == name
        ]

    def gauge_samples(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        """All label sets of gauge ``name`` with their values."""
        return [
            (dict(lk), float(v))
            for (n, lk), v in sorted(self._gauges.items())
            if n == name
        ]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic plain-dict view of every metric.

        Keys are ``name`` or ``name{label="value",...}`` with labels
        sorted; top-level sections are ``counters``, ``gauges`` and
        ``histograms``.  Two runs with identical event streams produce
        equal snapshots — the comparability property the resilience
        tests pin down under a seeded fault plan.
        """
        from repro.obs.native import to_native

        # Coerce values to native types at export time: a counter bumped
        # with an ``np.int64`` must not leak a NumPy scalar into JSON.
        counters = {
            _render_key(n, lk): to_native(v)
            for (n, lk), v in sorted(self._counters.items())
        }
        gauges = {
            _render_key(n, lk): to_native(v)
            for (n, lk), v in sorted(self._gauges.items())
        }
        hists = {}
        for (n, lk), h in sorted(self._hists.items()):
            hists[_render_key(n, lk)] = {
                "buckets": {str(b): int(c) for b, c in zip(h["buckets"], h["counts"])}
                | {"+Inf": int(h["counts"][-1])},
                "sum": to_native(h["sum"]),
                "count": int(h["count"]),
            }
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    # ------------------------------------------------------------- export
    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        by_name: Dict[str, List[Tuple[_LabelKey, float]]] = {}
        for (n, lk), v in self._counters.items():
            by_name.setdefault(n, []).append((lk, v))
        for name in sorted(by_name):
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} counter")
            for lk, v in sorted(by_name[name]):
                lines.append(f"{_render_key(name, lk)} {_num(v)}")
        by_name = {}
        for (n, lk), v in self._gauges.items():
            by_name.setdefault(n, []).append((lk, v))
        for name in sorted(by_name):
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} gauge")
            for lk, v in sorted(by_name[name]):
                lines.append(f"{_render_key(name, lk)} {_num(v)}")
        hist_by_name: Dict[str, List[Tuple[_LabelKey, Dict[str, Any]]]] = {}
        for (n, lk), h in self._hists.items():
            hist_by_name.setdefault(n, []).append((lk, h))
        for name in sorted(hist_by_name):
            # One TYPE line per metric family (not per label set), then the
            # bucket series; the _sum/_count series get their own TYPE/HELP
            # header so scrapers that treat them as standalone series see
            # them typed (they are cumulative, i.e. counters).
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} histogram")
            label_sets = sorted(hist_by_name[name])
            for lk, h in label_sets:
                cumulative = 0
                for bound, c in zip(h["buckets"], h["counts"]):
                    cumulative += c
                    key = _render_key(f"{name}_bucket", lk + (("le", _num(bound)),))
                    lines.append(f"{key} {cumulative}")
                cumulative += h["counts"][-1]
                key = _render_key(f"{name}_bucket", lk + (("le", "+Inf"),))
                lines.append(f"{key} {cumulative}")
            for suffix, render in (
                ("_sum", lambda h: _num(h["sum"])),
                ("_count", lambda h: str(h["count"])),
            ):
                if name in self._help:
                    lines.append(
                        f"# HELP {name}{suffix} {self._help[name]} ({suffix[1:]} of observations)"
                    )
                lines.append(f"# TYPE {name}{suffix} counter")
                for lk, h in label_sets:
                    lines.append(f"{_render_key(name + suffix, lk)} {render(h)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path) -> None:
        """Write :meth:`to_prometheus` to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._hists)})"
        )


def _num(v: float) -> str:
    """Render a number the way Prometheus likes (ints without the dot)."""
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


class NullMetrics:
    """The disabled registry: every method is a no-op."""

    enabled: bool = False

    def describe(self, name: str, help_text: str) -> None:
        pass

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **kwargs: Any) -> None:
        pass

    def observe_many(self, name: str, values: Iterable[float], **kwargs: Any) -> None:
        pass

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return None

    def counter_items(self) -> List[Tuple[str, Dict[str, str], float]]:
        return []

    def counter_samples(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        return []

    def gauge_samples(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_prometheus(self) -> str:
        return ""


#: Singleton used by the default (disabled) observability context.
NULL_METRICS = NullMetrics()
