"""Cross-boundary trace propagation: spans recorded where the work ran.

The coordinator-side tracer cannot be driven from pool workers (it is
deliberately thread-local, see :mod:`repro.obs.context`), so before this
module existed the sharded engines reconstructed per-shard spans on the
coordinating thread from worker-reported *timings* — process-pool
workers were effectively invisible in traces, and a request's shards
could not be attributed to the request that spawned them.

This module closes the gap with three pieces:

* :class:`TraceContext` — a tiny serialisable (picklable) identity
  ``(trace_id, parent_span_id)`` that crosses thread- and process-pool
  boundaries alongside the shard arguments;
* :func:`run_with_worker_obs` — the worker-side harness: runs the shard
  body under a **fresh local tracer** (and metrics registry) and packs
  everything recorded into a picklable :class:`WorkerTelemetry`;
* :func:`absorb_telemetry` — the coordinator-side merge: re-bases the
  worker spans onto the coordinator's timeline (both sides stamp the
  system-wide monotonic clock, so the shift is exact on one machine) and
  imports them with ``trace_id`` / ``span_id`` / ``parent_span_id``
  attributes whose links resolve within the merged trace.

Span identity lives in span *attributes*, not in a schema change:
``args["span_id"]`` names a span, ``args["parent_span_id"]`` points at
its parent, and ``args["trace_id"]`` groups everything one request (or
one parallel multiply) caused.  A Perfetto/Chrome viewer renders the
spans on their worker tracks; the analysis layer and the tests resolve
the links explicitly.

Everything here is zero-cost when tracing is disabled: the engines only
construct a :class:`TraceContext` when the ambient tracer is live, and a
``None`` context short-circuits the worker harness to a plain call.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.context import obs_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.native import to_native
from repro.obs.profile import WorkloadProfiler, profile_row_offset
from repro.obs.trace import Tracer

__all__ = [
    "TraceContext",
    "WorkerTelemetry",
    "new_trace_id",
    "span_id_of",
    "run_with_worker_obs",
    "absorb_telemetry",
]

_trace_counter = itertools.count()


def new_trace_id(prefix: str = "trace") -> str:
    """A process-unique trace id (``prefix-<pid>-<n>``).

    Monotonic per process — deterministic *structure* (no randomness),
    unique across the pool workers of one run because each worker brands
    ids with its own pid.
    """
    return f"{prefix}-{os.getpid()}-{next(_trace_counter)}"


@dataclass(frozen=True)
class TraceContext:
    """The serialisable identity a unit of traced work runs under.

    Attributes
    ----------
    trace_id:
        Groups every span one request (or one top-level parallel
        multiply) caused, across threads and processes.
    parent_span_id:
        ``span_id`` of the coordinator-side span that spawned this work;
        worker-recorded top-level spans parent-link to it.
    row_offset:
        Global tile-row index that the shipped work's local row 0 maps
        to.  Sharded engines slice ``A`` into 0-based sub-matrices; the
        worker harness re-bases its workload profile by this offset so
        tile-row-band attribution stays in whole-matrix coordinates.
    """

    trace_id: str
    parent_span_id: str = ""
    row_offset: int = 0


def span_id_of(ctx: "TraceContext", tag: str) -> str:
    """A deterministic child span id under ``ctx`` (used by coordinators
    to pre-assign ids to spans they will record after the fact)."""
    return f"{ctx.trace_id}/{tag}"


@dataclass
class WorkerTelemetry:
    """Everything one worker-side unit of work recorded, picklable.

    Attributes
    ----------
    ctx:
        The :class:`TraceContext` the work ran under.
    worker:
        Track label: ``worker-pid-<pid>`` on a process pool, the thread
        name on a thread pool.
    epoch_s:
        *Absolute* system-wide monotonic timestamp
        (:func:`time.perf_counter`) of the local tracer's epoch — what
        the coordinator subtracts to re-base span times.
    spans:
        Plain-dict span records (name, cat, start_s, dur_s, seq,
        parent_seq, args) with attrs coerced to native types.
    events:
        Instant markers recorded worker-side, same plain-dict shape.
    counters:
        ``(name, labels, value)`` triples from the worker's local
        metrics registry, for coordinator-side accumulation.
    profile:
        The worker's :meth:`~repro.obs.profile.WorkloadProfiler.to_payload`
        dict (``None`` when the worker recorded nothing) — the additive
        workload-profile state the coordinator absorbs.
    """

    ctx: TraceContext
    worker: str
    epoch_s: float
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    counters: List[Tuple[str, Dict[str, str], float]] = field(
        default_factory=list
    )
    profile: Optional[Dict[str, Any]] = None


def _worker_track() -> str:
    thread = threading.current_thread()
    if thread.name == "MainThread":
        return f"worker-pid-{os.getpid()}"
    return thread.name


def run_with_worker_obs(
    ctx: Optional[TraceContext], fn, *args: Any, **kwargs: Any
):
    """Run ``fn(*args, **kwargs)`` recording worker-local telemetry.

    Returns ``(result, WorkerTelemetry)``; with ``ctx=None`` the call is
    a plain ``fn(...)`` and the telemetry is ``None`` (the disabled
    path, so untraced runs pay one ``is None`` check).

    The local tracer and registry live only for this call: pool workers
    start with empty ambient context stacks, so entering a fresh
    :func:`~repro.obs.context.obs_context` here is what makes the shard
    body's existing instrumentation record *worker-side* spans instead
    of silently hitting the no-op singletons.

    If ``fn`` raises, the exception propagates unchanged (the spans of a
    failed shard die with it — the coordinator logs the failure event).
    """
    if ctx is None:
        return fn(*args, **kwargs), None
    tracer = Tracer()
    registry = MetricsRegistry()
    profiler = WorkloadProfiler()
    epoch_s = tracer.epoch_s
    with obs_context(
        tracer=tracer, metrics=registry, profile=profiler, trace_ctx=ctx
    ):
        with profile_row_offset(ctx.row_offset):
            result = fn(*args, **kwargs)
    telemetry = WorkerTelemetry(
        ctx=ctx, worker=_worker_track(), epoch_s=epoch_s
    )
    if profiler.runs or profiler.calibration:
        telemetry.profile = profiler.to_payload()
    for sp in tracer.spans:
        telemetry.spans.append(
            {
                "name": sp.name,
                "cat": sp.cat,
                "start_s": float(sp.start_s),
                "dur_s": float(sp.duration_s),
                "seq": int(sp.seq),
                "parent_seq": int(sp.parent_seq),
                "args": to_native(sp.args),
            }
        )
    for ev in tracer.events:
        if ev.ph != "i":
            continue
        telemetry.events.append(
            {
                "name": ev.name,
                "cat": ev.cat,
                "ts_s": float(ev.ts_s),
                "args": to_native(ev.args),
            }
        )
    for name, labels, value in registry.counter_items():
        telemetry.counters.append((name, dict(labels), float(value)))
    return result, telemetry


def absorb_telemetry(
    tracer,
    telemetry: Optional[WorkerTelemetry],
    *,
    epoch_s: Optional[float] = None,
    metrics=None,
    profile=None,
    pid: str = "workers",
) -> int:
    """Merge a :class:`WorkerTelemetry` into the coordinator's sinks.

    Parameters
    ----------
    tracer:
        The coordinator tracer (may be the null tracer — absorbed spans
        then vanish, which is the correct disabled behaviour).
    telemetry:
        The worker record; ``None`` is a no-op (returns 0).
    epoch_s:
        Absolute monotonic timestamp the destination timeline's zero
        corresponds to; defaults to the tracer's own epoch.  Worker span
        times are shifted by ``telemetry.epoch_s - epoch_s`` — exact on
        one machine because both sides stamped
        :func:`time.perf_counter`, which is system-wide monotonic.
    metrics:
        Optional coordinator registry; when given, the worker's counters
        are accumulated into it (counters only — merging is additive and
        order-free, exactly the property gauges and histograms lack).
    profile:
        Optional coordinator :class:`~repro.obs.profile.WorkloadProfiler`
        (or the null profiler); when given, the worker's profile payload
        is merged additively under the worker's track label.
    pid:
        Virtual process the worker tracks are drawn under.

    Returns the number of spans absorbed.

    Span links: worker span ``seq=k`` becomes
    ``{parent_span_id}/w{k}`` on track ``telemetry.worker``; its parent
    is the worker-local parent when it had one, else
    ``ctx.parent_span_id`` — so every absorbed span's parent link
    resolves either within the worker's own spans or at the
    coordinator-side span that spawned the work.
    """
    if telemetry is None:
        return 0
    if epoch_s is None:
        epoch_s = getattr(tracer, "epoch_s", telemetry.epoch_s)
    offset = telemetry.epoch_s - epoch_s
    ctx = telemetry.ctx
    base = ctx.parent_span_id or ctx.trace_id
    for sp in telemetry.spans:
        args = dict(sp["args"])
        args["trace_id"] = ctx.trace_id
        args["span_id"] = f"{base}/w{sp['seq']}"
        args["parent_span_id"] = (
            f"{base}/w{sp['parent_seq']}"
            if sp["parent_seq"] >= 0
            else ctx.parent_span_id
        )
        args["worker"] = telemetry.worker
        tracer.add_complete(
            sp["name"],
            max(sp["start_s"] + offset, 0.0),
            sp["dur_s"],
            pid=pid,
            tid=telemetry.worker,
            cat=sp["cat"],
            **args,
        )
    for ev in telemetry.events:
        args = dict(ev["args"])
        args["trace_id"] = ctx.trace_id
        args["worker"] = telemetry.worker
        tracer.instant(ev["name"], cat=ev["cat"], **args)
    if metrics is not None:
        for name, labels, value in telemetry.counters:
            metrics.inc(name, value, **labels)
    if profile is not None and telemetry.profile is not None:
        profile.absorb_payload(telemetry.profile, worker=telemetry.worker)
    return len(telemetry.spans)
