"""Memory-allocation tracking used to reproduce the paper's Figure 9.

Figure 9 of the paper plots, for every SpGEMM method, the *peak runtime
space cost* against completion time: each library allocates and frees
device buffers as it moves through its phases, and the curve of live bytes
over time is the quantity of interest (bhSPARSE's intermediate-product
expansion dominates, TileSpGEMM allocates no global intermediate space at
all).

Every algorithm in this repository routes its logical buffer lifetime
through an :class:`AllocationTracker`.  The tracker records an event log
(``alloc``/``free`` with a label, byte size and phase), maintains the live
total and the running peak, and can replay the log as a step curve for the
memory-over-time bench.

Note the tracker tracks the *algorithm's logical allocations* (what a CUDA
implementation would cudaMalloc), not Python's interpreter heap — that is
exactly the substitution DESIGN.md documents for the absent GPU.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DeviceOOMError

__all__ = ["AllocationEvent", "AllocationTracker"]


def _active_context():
    """The innermost ``repro.runtime`` execution context, if any.

    Looked up through ``sys.modules`` rather than imported: if the runtime
    package was never imported, no context can possibly be active, and the
    lazy lookup keeps this low-level module free of upward dependencies.
    """
    mod = sys.modules.get("repro.runtime.context")
    return mod.current_context() if mod is not None else None


def _active_obs():
    """The enabled observability context, if any (same lazy idiom)."""
    mod = sys.modules.get("repro.obs.context")
    if mod is None:
        return None
    obs = mod.current_obs()
    return obs if obs.enabled else None


@dataclass(frozen=True)
class AllocationEvent:
    """One allocation or free in the logical device-memory log."""

    kind: str  #: ``"alloc"`` or ``"free"``
    label: str  #: human-readable buffer name, e.g. ``"tileNnz_C"``
    nbytes: int  #: size of the buffer
    phase: str  #: algorithm phase active when the event happened
    live_after: int  #: total live bytes immediately after this event


class AllocationTracker:
    """Logical device-memory ledger with peak tracking.

    The tracker is deliberately strict: freeing an unknown label or
    double-freeing raises, because those are real bugs in the algorithm's
    buffer lifecycle that a CUDA implementation would hit as well.

    Parameters
    ----------
    budget_bytes:
        Optional device-memory budget.  An allocation that would push the
        live total past the budget raises
        :class:`~repro.errors.DeviceOOMError` *before* any state changes —
        the tracker stays consistent, exactly like a failed ``cudaMalloc``.
    use_context:
        When true (the default), a budget or fault plan left unset is
        inherited from the active :func:`repro.runtime.context.execution_context`.
        The chunked executor sets this false when replaying batch ledgers
        into a merged tracker, so injected faults are not double-counted.
    """

    def __init__(self, budget_bytes: Optional[int] = None, use_context: bool = True) -> None:
        self.events: List[AllocationEvent] = []
        self._live: Dict[str, int] = {}
        self.live_bytes: int = 0
        self.peak_bytes: int = 0
        self.total_allocated: int = 0
        self.current_phase: str = ""
        self.fault_plan = None
        if use_context:
            ctx = _active_context()
            if ctx is not None:
                if budget_bytes is None:
                    budget_bytes = ctx.budget_bytes
                self.fault_plan = ctx.fault_plan
        self.budget_bytes: Optional[int] = None if budget_bytes is None else int(budget_bytes)

    def set_phase(self, phase: str) -> None:
        """Tag subsequent events with the given phase name."""
        self.current_phase = phase

    def alloc(self, label: str, nbytes: int) -> None:
        """Record the allocation of buffer ``label`` of ``nbytes`` bytes.

        Raises :class:`~repro.errors.DeviceOOMError` when a budget is set
        and the allocation would exceed it; the tracker state is untouched
        in that case, so a recovery layer can resume from a clean ledger.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation for {label!r}: {nbytes}")
        if label in self._live:
            raise ValueError(f"buffer {label!r} allocated twice without free")
        if self.fault_plan is not None:
            self.fault_plan.on_alloc(label, nbytes)
        if self.budget_bytes is not None and self.live_bytes + nbytes > self.budget_bytes:
            raise DeviceOOMError(label, nbytes, self.live_bytes, self.budget_bytes)
        self._live[label] = nbytes
        self.live_bytes += nbytes
        self.total_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.events.append(
            AllocationEvent("alloc", label, nbytes, self.current_phase, self.live_bytes)
        )
        obs = _active_obs()
        if obs is not None:
            obs.metrics.inc("device_alloc_bytes_total", nbytes)
            obs.metrics.inc("device_alloc_events_total")
            obs.metrics.max_gauge("device_peak_live_bytes", self.peak_bytes)
            obs.tracer.counter("device_live_bytes", self.live_bytes)

    def alloc_array(self, label: str, array) -> None:
        """Record an allocation sized from a NumPy array's ``nbytes``."""
        self.alloc(label, int(array.nbytes))

    def free(self, label: str) -> None:
        """Record the release of buffer ``label``."""
        if label not in self._live:
            raise ValueError(f"free of unknown buffer {label!r}")
        nbytes = self._live.pop(label)
        self.live_bytes -= nbytes
        self.events.append(
            AllocationEvent("free", label, nbytes, self.current_phase, self.live_bytes)
        )
        obs = _active_obs()
        if obs is not None:
            obs.tracer.counter("device_live_bytes", self.live_bytes)

    def free_all(self) -> None:
        """Release every live buffer (end-of-algorithm cleanup)."""
        for label in list(self._live):
            self.free(label)

    def live_labels(self) -> Tuple[str, ...]:
        """Currently live buffer labels (insertion order)."""
        return tuple(self._live)

    def timeline(self, total_seconds: Optional[float] = None) -> List[Tuple[float, int]]:
        """Replay the log as a ``(time, live_bytes)`` step curve.

        Events are spaced evenly across ``total_seconds`` (default: one
        unit per event), which matches how the paper's Figure 9 tooling
        samples the allocator between phases.
        """
        n = len(self.events)
        if n == 0:
            return [(0.0, 0)]
        span = float(total_seconds) if total_seconds is not None else float(n)
        step = span / n
        return [(step * (i + 1), ev.live_after) for i, ev in enumerate(self.events)]

    def peak_by_phase(self) -> Dict[str, int]:
        """Maximum live bytes observed within each phase."""
        peaks: Dict[str, int] = {}
        for ev in self.events:
            peaks[ev.phase] = max(peaks.get(ev.phase, 0), ev.live_after)
        return peaks
