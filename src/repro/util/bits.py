"""Bit-mask helpers used by the tiled sparse format.

The paper stores, for every 16x16 sparse tile, one 16-bit unsigned mask per
tile row: bit ``c`` of row ``r``'s mask is set iff the tile has a nonzero at
local position ``(r, c)``.  The symbolic phase of TileSpGEMM works almost
entirely on these masks (AtomicOr accumulation, popcount to derive per-row
nonzero counts, prefix popcount to derive positions), so fast vectorised
mask arithmetic is the foundation of the whole implementation.

Everything here is pure NumPy; the 16-bit popcount is served from a
precomputed 64 KiB lookup table, which is both the fastest portable option
and a faithful stand-in for the hardware ``__popc`` intrinsic the CUDA
kernels use.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "POPCOUNT16",
    "popcount16",
    "prefix_popcount",
    "mask_nonzero_columns",
    "masks_to_rowptr",
    "columns_to_mask",
]


def _build_popcount16() -> np.ndarray:
    """Build the 16-bit popcount lookup table (uint8, 65536 entries)."""
    table = np.zeros(1 << 16, dtype=np.uint8)
    # Classic doubling construction: popcount(i) = popcount(i >> 1) + (i & 1).
    idx = np.arange(1 << 16, dtype=np.uint32)
    table = (table + (idx & 1)).astype(np.uint8)
    for shift in range(1, 16):
        table = table + ((idx >> shift) & 1).astype(np.uint8)
    return table


#: Lookup table mapping a 16-bit value to the number of set bits.
POPCOUNT16: np.ndarray = _build_popcount16()

#: For each 16-bit mask m and column c, PREFIX16[m, c] = popcount(m & ((1<<c)-1)),
#: i.e. the number of set bits *strictly below* bit c.  Built lazily because it
#: is 1 MiB and only needed by the sparse accumulator.
_PREFIX16: np.ndarray | None = None


def popcount16(masks: np.ndarray) -> np.ndarray:
    """Return the number of set bits of each 16-bit mask in ``masks``.

    Parameters
    ----------
    masks:
        Array of any shape with an unsigned integer dtype whose values fit
        in 16 bits.

    Returns
    -------
    numpy.ndarray of uint8 with the same shape as ``masks``.
    """
    return POPCOUNT16[np.asarray(masks, dtype=np.uint32)]


def _prefix_table() -> np.ndarray:
    global _PREFIX16
    if _PREFIX16 is None:
        masks = np.arange(1 << 16, dtype=np.uint32)[:, None]
        cols = np.arange(16, dtype=np.uint32)[None, :]
        below = masks & ((np.uint32(1) << cols) - np.uint32(1))
        _PREFIX16 = POPCOUNT16[below]
    return _PREFIX16


def prefix_popcount(masks: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Rank of bit ``cols`` inside ``masks``: set bits strictly below it.

    This is the key primitive of the *sparse accumulator*: given a tile-row
    mask and a column index, it returns the offset of that column's nonzero
    within the compacted per-row storage.

    Parameters
    ----------
    masks:
        16-bit masks (any shape, unsigned values < 2**16).
    cols:
        Column indices in [0, 16), broadcastable against ``masks``.
    """
    table = _prefix_table()
    return table[np.asarray(masks, dtype=np.uint32), np.asarray(cols, dtype=np.uint32)]


def mask_nonzero_columns(mask: int) -> np.ndarray:
    """Return the sorted column indices of the set bits of a single mask."""
    m = int(mask)
    cols = [c for c in range(16) if m & (1 << c)]
    return np.asarray(cols, dtype=np.uint8)


def masks_to_rowptr(masks: np.ndarray) -> np.ndarray:
    """Convert per-tile row masks to per-tile CSR-style row pointers.

    Parameters
    ----------
    masks:
        ``(num_tiles, 16)`` array of 16-bit row masks.

    Returns
    -------
    ``(num_tiles, 16)`` uint8 array: entry ``[t, r]`` is the offset of tile
    ``t``'s row ``r`` within the tile's nonzero storage.  Following the
    paper, only 16 offsets are stored (not 17); the total nonzero count of
    the tile lives in the ``tileNnz`` array instead, so every offset fits an
    8-bit unsigned char (values 0..255).
    """
    masks = np.asarray(masks)
    if masks.ndim != 2 or masks.shape[1] != 16:
        raise ValueError(f"expected (num_tiles, 16) masks, got shape {masks.shape}")
    counts = popcount16(masks).astype(np.uint16)
    rowptr = np.zeros_like(counts)
    np.cumsum(counts[:, :-1], axis=1, out=rowptr[:, 1:])
    if rowptr.max(initial=0) > 255:
        raise ValueError("tile row pointer overflows uint8; tile has > 256 nonzeros")
    return rowptr.astype(np.uint8)


#: For each 16-bit mask m, NTHBIT16[m, j] = column of the j-th (lowest-first)
#: set bit, or 255 when j >= popcount(m).  1 MiB, built lazily: only the
#: symbolic→numeric expansion of C's indices needs it.
_NTHBIT16: np.ndarray | None = None


def _nthbit_table() -> np.ndarray:
    global _NTHBIT16
    if _NTHBIT16 is None:
        table = np.full((1 << 16, 16), 255, dtype=np.uint8)
        masks = np.arange(1 << 16, dtype=np.uint32)
        rank = np.zeros(1 << 16, dtype=np.uint8)
        for c in range(16):
            has_bit = (masks >> c) & 1 == 1
            table[has_bit, rank[has_bit]] = c
            rank[has_bit] += 1
        _NTHBIT16 = table
    return _NTHBIT16


def nth_set_bit(masks: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Column of the ``ranks``-th set bit of each 16-bit mask.

    This converts a symbolic row mask plus within-row rank back into a
    local column index; the numeric step uses it to materialise ``C``'s
    ``colidx`` array from the step-2 masks.
    """
    table = _nthbit_table()
    return table[np.asarray(masks, dtype=np.uint32), np.asarray(ranks, dtype=np.intp)]


def columns_to_mask(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Build 16 row masks from local (row, col) coordinates of one tile."""
    masks = np.zeros(16, dtype=np.uint16)
    np.bitwise_or.at(masks, np.asarray(rows, dtype=np.intp), (np.uint16(1) << np.asarray(cols, dtype=np.uint16)))
    return masks
