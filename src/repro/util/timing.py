"""Phase timing used to reproduce the paper's runtime-breakdown figures.

The paper reports (Figures 10 and 14) how TileSpGEMM's runtime splits
across *step 1* (tile layout), *step 2* (symbolic), *step 3* (numeric) and
*memory allocation*.  Every algorithm in this repository therefore runs
under a :class:`PhaseTimer` that accumulates wall-clock time per named
phase, so the breakdown benches can read the split straight off the result
object.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly; durations add up.  Nested phases are
    allowed and accounted independently (the outer phase includes the inner
    one, exactly like CUDA event ranges around nested kernels would).

    Examples
    --------
    >>> timer = PhaseTimer()
    >>> with timer.phase("step1"):
    ...     pass
    >>> "step1" in timer.seconds
    True
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one execution of phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually credit ``seconds`` to phase ``name``."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def count(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    @property
    def total(self) -> float:
        """Sum of all phase times in seconds."""
        return sum(self.seconds.values())

    def fractions(self) -> Dict[str, float]:
        """Per-phase fraction of the total (empty dict if nothing timed)."""
        total = self.total
        if total <= 0.0:
            return {}
        return {name: sec / total for name, sec in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulated phases into this one."""
        for name, sec in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + sec
        for name, cnt in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + cnt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in sorted(self.seconds.items()))
        return f"PhaseTimer({parts})"
