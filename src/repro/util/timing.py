"""Phase timing used to reproduce the paper's runtime-breakdown figures.

The paper reports (Figures 10 and 14) how TileSpGEMM's runtime splits
across *step 1* (tile layout), *step 2* (symbolic), *step 3* (numeric) and
*memory allocation*.  Every algorithm in this repository therefore runs
under a :class:`PhaseTimer` that accumulates wall-clock time per named
phase, so the breakdown benches can read the split straight off the result
object.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PhaseStats", "PhaseTimer"]


class PhaseStats:
    """Summary of one phase's recorded durations.

    Attributes
    ----------
    name:
        The phase name.
    total:
        Accumulated seconds across all entries.
    count:
        Number of entries.
    min, max:
        Shortest / longest single entry in seconds (``0.0`` when the phase
        was never entered).
    """

    __slots__ = ("name", "total", "count", "min", "max")

    def __init__(self, name: str, total: float, count: int, min_s: float, max_s: float) -> None:
        self.name = name
        self.total = total
        self.count = count
        self.min = min_s
        self.max = max_s

    @property
    def mean(self) -> float:
        """Average seconds per entry (``0.0`` for an empty phase)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseStats({self.name!r}, total={self.total:.6f}s, count={self.count}, "
            f"min={self.min:.6f}s, max={self.max:.6f}s)"
        )


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly; durations add up.  Nested phases are
    allowed and accounted independently (the outer phase includes the inner
    one, exactly like CUDA event ranges around nested kernels would).

    .. warning::
       Because nested phases are accounted independently, :attr:`total`
       **double-counts** time spent inside a nested phase: the inner
       phase's seconds are also part of the outer phase's seconds.  For a
       breakdown of *disjoint* buckets, time sibling phases at one level
       (as the pipeline's ``step1``/``step2``/``step3``/``malloc`` phases
       are) or subtract the inner phases yourself.

    Examples
    --------
    >>> timer = PhaseTimer()
    >>> with timer.phase("step1"):
    ...     pass
    >>> "step1" in timer.seconds
    True

    Nested phases overlap, so ``total`` exceeds real wall-clock time:

    >>> t = PhaseTimer()
    >>> t.add("outer", 2.0)   # outer phase, includes the inner one
    >>> t.add("inner", 0.5)   # also counted inside "outer"
    >>> t.total               # 2.5 "phase-seconds" for 2.0s of wall clock
    2.5
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._min: Dict[str, float] = {}
        self._max: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one execution of phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._record(name, elapsed)

    def add(self, name: str, seconds: float) -> None:
        """Manually credit ``seconds`` to phase ``name``."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self._record(name, seconds)

    def _record(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1
        if name not in self._min or elapsed < self._min[name]:
            self._min[name] = elapsed
        if name not in self._max or elapsed > self._max[name]:
            self._max[name] = elapsed

    def count(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    def stats(self, name: str) -> PhaseStats:
        """Min/max/mean summary for phase ``name`` (zeros if never entered)."""
        return PhaseStats(
            name,
            self.seconds.get(name, 0.0),
            self._counts.get(name, 0),
            self._min.get(name, 0.0),
            self._max.get(name, 0.0),
        )

    def summary(self) -> Dict[str, PhaseStats]:
        """Per-phase :class:`PhaseStats`, in phase insertion order."""
        return {name: self.stats(name) for name in self.seconds}

    def reset(self) -> None:
        """Forget all recorded phases; the timer is reusable afterwards."""
        self.seconds.clear()
        self._counts.clear()
        self._min.clear()
        self._max.clear()

    @property
    def total(self) -> float:
        """Sum of all phase times in seconds.

        Nested phases overlap (see the class warning), so this is the sum
        of *phase-seconds*, not necessarily elapsed wall-clock time.
        """
        return sum(self.seconds.values())

    def fractions(self) -> Dict[str, float]:
        """Per-phase fraction of the total (empty dict if nothing timed)."""
        total = self.total
        if total <= 0.0:
            return {}
        return {name: sec / total for name, sec in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulated phases into this one.

        Totals and counts add; min/max fold as the min/max over both
        timers.  Phase ordering is deterministic: this timer's existing
        phases keep their positions, and ``other``'s new phases append in
        ``other``'s insertion order — so merging the same sequence of
        timers always yields the same ``seconds`` key order.
        """
        for name, sec in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + sec
        for name, cnt in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + cnt
        for name, lo in other._min.items():
            if name not in self._min or lo < self._min[name]:
                self._min[name] = lo
        for name, hi in other._max.items():
            if name not in self._max or hi > self._max[name]:
                self._max[name] = hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in sorted(self.seconds.items()))
        return f"PhaseTimer({parts})"
