"""Vectorised segment/array helpers shared by the SpGEMM kernels.

The vectorised TileSpGEMM pipeline and the row-row baselines all work on
*segmented* flat arrays (nonzeros grouped by row or by tile).  The helpers
here implement the classic NumPy idioms for that representation:
concatenated ``arange`` ranges, per-segment positions, and segmented
reductions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "concat_ranges",
    "segment_ids",
    "segment_positions",
    "segmented_sum",
]


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` for every i.

    Equivalent to ``np.concatenate([np.arange(s, s + l) ...])`` but runs in
    O(total) vectorised time.  Zero-length segments are allowed.

    Examples
    --------
    >>> concat_ranges(np.array([5, 0]), np.array([3, 2])).tolist()
    [5, 6, 7, 0, 1]
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have identical shapes")
    if np.any(lengths < 0):
        raise ValueError("negative segment length")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    nonempty = lengths > 0
    seg_starts = ends[nonempty] - lengths[nonempty]
    out[seg_starts[0]] = starts[nonempty][0]
    if seg_starts.size > 1:
        # At each later segment start, jump from the previous segment's last
        # value +1 to the new segment's start value.
        prev_last = starts[nonempty][:-1] + lengths[nonempty][:-1] - 1
        out[seg_starts[1:]] = starts[nonempty][1:] - prev_last
    return np.cumsum(out)


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """For segments of the given lengths, the segment id of every element.

    Examples
    --------
    >>> segment_ids(np.array([2, 0, 3])).tolist()
    [0, 0, 2, 2, 2]
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


def segment_positions(lengths: np.ndarray) -> np.ndarray:
    """Position of every element within its segment (0-based).

    Examples
    --------
    >>> segment_positions(np.array([2, 3])).tolist()
    [0, 1, 0, 1, 2]
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def segmented_sum(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Sum ``values`` within consecutive segments of the given lengths."""
    values = np.asarray(values)
    lengths = np.asarray(lengths, dtype=np.int64)
    if int(lengths.sum()) != values.size:
        raise ValueError("segment lengths do not cover the value array")
    if values.size == 0:
        return np.zeros(lengths.size, dtype=values.dtype if values.dtype.kind == "f" else np.int64)
    csum = np.concatenate([[0], np.cumsum(values)])
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return csum[ends] - csum[starts]
