"""Shared low-level utilities: bit manipulation, phase timing, allocation
tracking and argument validation.

These helpers are deliberately free of any knowledge about sparse formats
or SpGEMM algorithms so that every other subpackage can depend on them.
"""

from repro.util.arrays import (
    concat_ranges,
    segment_ids,
    segment_positions,
    segmented_sum,
)
from repro.util.bits import (
    POPCOUNT16,
    mask_nonzero_columns,
    masks_to_rowptr,
    nth_set_bit,
    popcount16,
    prefix_popcount,
)
from repro.util.timing import PhaseTimer
from repro.util.alloc import AllocationTracker, AllocationEvent
from repro.util.validation import (
    check_dims_match,
    check_square,
    require_dtype,
)

__all__ = [
    "concat_ranges",
    "segment_ids",
    "segment_positions",
    "segmented_sum",
    "nth_set_bit",
    "POPCOUNT16",
    "mask_nonzero_columns",
    "masks_to_rowptr",
    "popcount16",
    "prefix_popcount",
    "PhaseTimer",
    "AllocationTracker",
    "AllocationEvent",
    "check_dims_match",
    "check_square",
    "require_dtype",
]
