"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInputError

__all__ = ["check_dims_match", "check_square", "require_dtype"]


def check_dims_match(a_shape, b_shape) -> None:
    """Raise :class:`~repro.errors.InvalidInputError` (a ``ValueError``)
    unless ``a_shape[1] == b_shape[0]`` (A @ B)."""
    if a_shape[1] != b_shape[0]:
        raise InvalidInputError(
            f"dimension mismatch for SpGEMM: A is {a_shape[0]}x{a_shape[1]}, "
            f"B is {b_shape[0]}x{b_shape[1]}"
        )


def check_square(shape) -> None:
    """Raise :class:`~repro.errors.InvalidInputError` unless the shape is
    square."""
    if shape[0] != shape[1]:
        raise InvalidInputError(f"expected a square matrix, got {shape[0]}x{shape[1]}")


def require_dtype(array: np.ndarray, dtype, name: str) -> np.ndarray:
    """Return ``array`` cast to ``dtype``, copying only when needed."""
    return np.ascontiguousarray(array, dtype=dtype) if array.dtype != np.dtype(dtype) else np.ascontiguousarray(array)
