"""TileSpGEMM reproduction: tiled parallel sparse matrix-matrix multiply.

A from-scratch Python implementation of

    Niu, Lu, Ji, Song, Jin, Liu.  "TileSpGEMM: A Tiled Algorithm for
    Parallel Sparse General Matrix-Matrix Multiplication on GPUs."
    PPoPP 2022.

Quick start::

    from repro import TileMatrix, tile_spgemm
    from repro.matrices import generators

    a = TileMatrix.from_coo(generators.banded(2000, 12, seed=1))
    result = tile_spgemm(a, a)
    print(result.c.nnz, result.timer.fractions())

Subpackages
-----------
``repro.core``
    The paper's contribution: the tiled sparse format and the three-step
    TileSpGEMM algorithm.
``repro.formats``
    Sparse-format substrate: COO, CSR, CSB-M/CSB-I, MatrixMarket I/O.
``repro.baselines``
    From-scratch implementations of every compared method (cuSPARSE-class
    SPA, bhSPARSE ESC, NSPARSE hash, spECK, tSparse, references).
``repro.gpu``
    The GPU execution model standing in for the paper's RTX 3060/3090.
``repro.matrices``
    Synthetic workload generators and the paper's named matrix suites.
``repro.analysis``
    Trend fitting, breakdown buckets, report tables.
``repro.apps``
    AMG, triangle counting and Markov clustering built on the SpGEMM API.
``repro.runtime`` / ``repro.errors``
    Resilient execution: typed errors, memory budgets, fault injection,
    chunked re-execution and the retry/fallback engine
    (:func:`repro.runtime.policy.run_resilient`).
``repro.obs``
    Observability: structured tracing (Chrome trace-event / Perfetto
    export), kernel-counter metrics (Prometheus text export) and the
    ambient :func:`repro.obs.obs_context` that turns them on.
"""

from repro.core import (
    TILE,
    TileMatrix,
    TileSpGEMMResult,
    tile_spgemm,
    tile_spgemm_from_csr,
)
from repro.errors import (
    CommFailure,
    DeviceOOMError,
    InvalidInputError,
    ReproError,
    ResilienceExhausted,
    TransientKernelError,
)
from repro.formats import COOMatrix, CSBMatrix, CSRMatrix, read_mtx, write_mtx

__version__ = "1.0.0"

__all__ = [
    "TILE",
    "TileMatrix",
    "TileSpGEMMResult",
    "tile_spgemm",
    "tile_spgemm_from_csr",
    "COOMatrix",
    "CSBMatrix",
    "CSRMatrix",
    "read_mtx",
    "write_mtx",
    "ReproError",
    "InvalidInputError",
    "DeviceOOMError",
    "TransientKernelError",
    "CommFailure",
    "ResilienceExhausted",
    # lazily resolved from repro.runtime:
    "FaultPlan",
    "RetryPolicy",
    "ResilienceReport",
    "run_resilient",
    # lazily resolved from repro.obs:
    "MetricsRegistry",
    "Tracer",
    "make_obs",
    "obs_context",
    "__version__",
]

_RUNTIME_EXPORTS = {"FaultPlan", "RetryPolicy", "ResilienceReport", "run_resilient"}
_OBS_EXPORTS = {"MetricsRegistry", "Tracer", "make_obs", "obs_context"}


def __getattr__(name: str):
    if name in _RUNTIME_EXPORTS:
        import repro.runtime as _runtime

        return getattr(_runtime, name)
    if name in _OBS_EXPORTS:
        import repro.obs as _obs

        return getattr(_obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
