"""Pluggable kernel-backend registry for the TileSpGEMM pipeline.

The three-step pipeline funnels its hot inner work through the five
kernels of a :class:`~repro.backend.base.KernelSet` (mask OR-accumulate,
popcount, popcount rank, scatter-add accumulate, tile compaction); this
module maps *names* onto kernel sets so the same pipeline can run on any
registered implementation::

    from repro.backend import list_backends, use_backend
    from repro.core import tile_spgemm

    tile_spgemm(a, b, backend="pyloops")      # per-call selection
    with use_backend("pyloops"):              # scoped process default
        tile_spgemm(a, b)

Selection precedence, resolved per run by :func:`resolve_backend`:

1. an explicit argument (a name or a ``KernelSet`` instance);
2. the process default set by :func:`set_default_backend` /
   :func:`use_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. the always-registered ``numpy`` reference.

Names — not ``KernelSet`` objects — are what crosses process boundaries:
the parallel engine (:mod:`repro.runtime.parallel`) resolves its backend
spec to a name in the coordinator and ships the name to pool workers,
whose freshly-imported registry re-resolves it.  Module state (the
process default, instantiated kernel sets) does not survive ``spawn``,
but the registry and the environment do.

In-tree backends:

* ``numpy`` — the vectorised reference; always available and the
  definition of the byte-level conformance contract;
* ``pyloops`` — pure-Python scalar loops; the slow, obviously-correct
  oracle for differential testing;
* ``numba`` — JIT-compiled scalar loops; registered only when
  :mod:`numba` is importable, skipped otherwise.

``docs/BACKENDS.md`` documents the registry API, how to write a backend
and the conformance contract the test suite enforces.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.backend.accel import NumbaKernelSet, numba_available
from repro.backend.base import KERNEL_NAMES, KernelSet
from repro.backend.numpy_backend import NumpyKernelSet
from repro.backend.pyloops import PyLoopsKernelSet
from repro.errors import ConfigurationError, InvalidInputError

__all__ = [
    "ENV_BACKEND",
    "DEFAULT_BACKEND",
    "KernelSet",
    "KERNEL_NAMES",
    "NumpyKernelSet",
    "PyLoopsKernelSet",
    "NumbaKernelSet",
    "numba_available",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "list_backends",
    "backend_available",
    "resolve_backend",
    "resolve_backend_name",
    "set_default_backend",
    "default_backend_name",
    "use_backend",
]

#: Environment variable consulted when neither an explicit backend nor a
#: process default is set (inherited by spawned pool workers).
ENV_BACKEND = "REPRO_BACKEND"

#: The always-registered reference backend.
DEFAULT_BACKEND = "numpy"


@dataclass
class _Entry:
    name: str
    factory: Callable[[], KernelSet]
    available: Callable[[], bool] = field(default=lambda: True)
    description: str = ""


_REGISTRY: Dict[str, _Entry] = {}
_INSTANCES: Dict[str, KernelSet] = {}
_DEFAULT_NAME: Optional[str] = None


def register_backend(
    name: str,
    factory: Optional[Callable[[], KernelSet]] = None,
    *,
    available: Optional[Callable[[], bool]] = None,
    description: str = "",
    replace: bool = False,
):
    """Register ``factory`` (returning a :class:`KernelSet`) as ``name``.

    Usable directly or as a class decorator::

        @register_backend("mybackend", description="...")
        class MyKernelSet(KernelSet): ...

    Parameters
    ----------
    name:
        Registry key; also what ``REPRO_BACKEND`` / ``--backend`` accept.
    factory:
        Zero-argument callable producing the kernel set (a ``KernelSet``
        subclass works — classes are their own factories).  Instantiated
        lazily on first :func:`get_backend` and cached per process.
    available:
        Optional probe; when it returns False the backend stays listed
        under ``list_backends(available_only=False)`` but cannot be
        instantiated (optional-dependency gating).
    description:
        One line for ``list_backends`` consumers and help text.
    replace:
        Allow overwriting an existing registration (tests).
    """

    def _register(fac):
        if name in _REGISTRY and not replace:
            raise InvalidInputError(f"backend {name!r} is already registered")
        _REGISTRY[name] = _Entry(
            name=name,
            factory=fac,
            available=available or (lambda: True),
            description=description,
        )
        _INSTANCES.pop(name, None)
        return fac

    if factory is None:
        return _register
    return _register(factory)


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for test cleanup).

    The ``numpy`` reference cannot be removed — the pipeline's default
    resolution and the conformance suite both anchor on it.
    """
    if name == DEFAULT_BACKEND:
        raise InvalidInputError("the numpy reference backend cannot be unregistered")
    _REGISTRY.pop(name, None)
    _INSTANCES.pop(name, None)
    global _DEFAULT_NAME
    if _DEFAULT_NAME == name:
        _DEFAULT_NAME = None


def backend_available(name: str) -> bool:
    """True when ``name`` is registered and its availability probe passes."""
    entry = _REGISTRY.get(name)
    return entry is not None and bool(entry.available())


def list_backends(available_only: bool = True) -> List[str]:
    """Registered backend names, sorted; ``numpy`` always first.

    ``available_only`` (default) filters out registrations whose
    optional dependency is missing on this machine.
    """
    names = [
        n
        for n, e in _REGISTRY.items()
        if not available_only or e.available()
    ]
    names.sort(key=lambda n: (n != DEFAULT_BACKEND, n))
    return names


def get_backend(name: str) -> KernelSet:
    """The (per-process cached) kernel set registered as ``name``.

    Raises :class:`~repro.errors.InvalidInputError` for unknown names and
    for registered-but-unavailable backends, naming the alternatives.
    """
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    entry = _REGISTRY.get(name)
    if entry is None:
        raise InvalidInputError(
            f"unknown backend {name!r}; registered: {list_backends(available_only=False)}"
        )
    if not entry.available():
        raise InvalidInputError(
            f"backend {name!r} is registered but unavailable on this machine "
            f"(missing optional dependency); available: {list_backends()}"
        )
    inst = entry.factory()
    if not isinstance(inst, KernelSet):
        raise InvalidInputError(
            f"backend {name!r} factory returned {type(inst).__name__}, "
            "expected a KernelSet"
        )
    inst.name = name
    _INSTANCES[name] = inst
    return inst


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the process-default backend.

    Returns the previous default name so callers can restore it.  The
    default is per-process module state: it does **not** survive into
    spawned pool workers, which fall back to ``REPRO_BACKEND`` — pass an
    explicit backend (the engines thread the resolved *name* through)
    when the choice must cross processes.
    """
    global _DEFAULT_NAME
    if name is not None:
        get_backend(name)  # validate eagerly
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


def default_backend_name() -> str:
    """The name :func:`resolve_backend` would use with no explicit spec."""
    if _DEFAULT_NAME is not None:
        return _DEFAULT_NAME
    env = os.environ.get(ENV_BACKEND, "").strip()
    return env or DEFAULT_BACKEND


def resolve_backend(spec: Union[None, str, KernelSet] = None) -> KernelSet:
    """Resolve a backend spec to a kernel set.

    ``spec`` may be a :class:`KernelSet` instance (returned as-is), a
    registered name, or ``None`` — which walks the precedence chain:
    process default, then ``REPRO_BACKEND``, then ``numpy``.

    A name that came from the ``REPRO_BACKEND`` environment variable and
    fails to resolve raises :class:`~repro.errors.ConfigurationError`
    naming the variable (exit code 10 at the CLI) instead of the generic
    invalid-input error an explicit argument gets.
    """
    if isinstance(spec, KernelSet):
        return spec
    from_env = False
    if spec is None:
        from_env = _DEFAULT_NAME is None and bool(
            os.environ.get(ENV_BACKEND, "").strip()
        )
        spec = default_backend_name()
    if not isinstance(spec, str):
        raise InvalidInputError(
            f"backend spec must be a name or KernelSet, got {type(spec).__name__}"
        )
    try:
        return get_backend(spec)
    except ConfigurationError:
        raise
    except InvalidInputError as exc:
        if from_env:
            raise ConfigurationError(str(exc), source=ENV_BACKEND) from exc
        raise


def resolve_backend_name(spec: Union[None, str, KernelSet] = None) -> str:
    """Like :func:`resolve_backend` but returns the registry name — the
    pickle-safe form the parallel engine ships to pool workers."""
    return resolve_backend(spec).name


@contextmanager
def use_backend(name: Optional[str]):
    """Scoped :func:`set_default_backend`; yields the active kernel set."""
    previous = set_default_backend(name)
    try:
        yield resolve_backend(None)
    finally:
        set_default_backend(previous)


# ---------------------------------------------------------------- in-tree
def _register_builtin_backends() -> None:
    from repro.backend.accel import NumbaKernelSet, numba_available
    from repro.backend.numpy_backend import NumpyKernelSet
    from repro.backend.pyloops import PyLoopsKernelSet

    register_backend(
        DEFAULT_BACKEND,
        NumpyKernelSet,
        description="vectorised NumPy reference (always available)",
        replace=True,
    )
    register_backend(
        "pyloops",
        PyLoopsKernelSet,
        description="pure-Python scalar loops — slow differential oracle",
        replace=True,
    )
    register_backend(
        "numba",
        NumbaKernelSet,
        available=numba_available,
        description="Numba-JIT scalar loops (requires the numba package)",
        replace=True,
    )


_register_builtin_backends()
