"""Pluggable kernel-backend registry for the TileSpGEMM pipeline.

The three-step pipeline funnels its hot inner work through the five
kernels of a :class:`~repro.backend.base.KernelSet` (mask OR-accumulate,
popcount, popcount rank, scatter-add accumulate, tile compaction); this
module maps *names* onto kernel sets so the same pipeline can run on any
registered implementation::

    from repro.backend import list_backends, use_backend
    from repro.core import tile_spgemm

    tile_spgemm(a, b, backend="pyloops")      # per-call selection
    with use_backend("pyloops"):              # scoped process default
        tile_spgemm(a, b)

Selection precedence, resolved per run by :func:`resolve_backend`:

1. an explicit argument (a name or a ``KernelSet`` instance);
2. the process default set by :func:`set_default_backend` /
   :func:`use_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. the always-registered ``numpy`` reference.

Names — not ``KernelSet`` objects — are what crosses process boundaries:
the parallel engine (:mod:`repro.runtime.parallel`) resolves its backend
spec to a name in the coordinator and ships the name to pool workers,
whose freshly-imported registry re-resolves it.  Module state (the
process default, instantiated kernel sets) does not survive ``spawn``,
but the registry and the environment do.

Every registration also declares a
:class:`~repro.backend.base.ConformanceTier`: ``EXACT`` backends are
byte-identical to the reference, ``FAST_MATH`` backends only promise
byte-identical *structure* plus values within their declared
:class:`~repro.backend.base.ValueTolerance`.  Callers that need
bit-reproducible values pass ``tier=ConformanceTier.EXACT`` to
:func:`resolve_backend` — resolution then refuses fast-math backends
loudly (a :class:`~repro.errors.ConfigurationError` when the name came
from ``REPRO_BACKEND``) instead of silently relaxing the guarantee.

In-tree backends:

* ``numpy`` — the vectorised reference; always available and the
  definition of the byte-level conformance contract (tier 1);
* ``pyloops`` — pure-Python scalar loops; the slow, obviously-correct
  oracle for differential testing (tier 1);
* ``numba`` — JIT-compiled sequential scalar loops; registered only
  when :mod:`numba` is importable, skipped otherwise (tier 1);
* ``numba-par`` — ``prange`` + ``fastmath`` variants of the same
  kernels (tier 2, numba-gated like ``numba``);
* ``fragment`` — batched 16-wide fragment accumulation modelling the
  tensor-core dense-16×16 path (tier 2, always available).

``docs/BACKENDS.md`` documents the registry API, how to write a backend
and the two-tier conformance contract the test suite enforces.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.backend.accel import NumbaKernelSet, NumbaParKernelSet, numba_available
from repro.backend.base import (
    DEFAULT_FAST_MATH_TOLERANCE,
    EXACT_TOLERANCE,
    KERNEL_NAMES,
    ConformanceTier,
    KernelSet,
    ValueTolerance,
)
from repro.backend.fragment import FragmentKernelSet
from repro.backend.numpy_backend import NumpyKernelSet
from repro.backend.pyloops import PyLoopsKernelSet
from repro.errors import ConfigurationError, InvalidInputError

__all__ = [
    "ENV_BACKEND",
    "DEFAULT_BACKEND",
    "ConformanceTier",
    "ValueTolerance",
    "EXACT_TOLERANCE",
    "DEFAULT_FAST_MATH_TOLERANCE",
    "KernelSet",
    "KERNEL_NAMES",
    "NumpyKernelSet",
    "PyLoopsKernelSet",
    "NumbaKernelSet",
    "NumbaParKernelSet",
    "FragmentKernelSet",
    "numba_available",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "list_backends",
    "backend_available",
    "backend_tier",
    "backend_tolerance",
    "resolve_backend",
    "resolve_backend_name",
    "set_default_backend",
    "default_backend_name",
    "use_backend",
]

#: Environment variable consulted when neither an explicit backend nor a
#: process default is set (inherited by spawned pool workers).
ENV_BACKEND = "REPRO_BACKEND"

#: The always-registered reference backend.
DEFAULT_BACKEND = "numpy"


@dataclass
class _Entry:
    name: str
    factory: Callable[[], KernelSet]
    available: Callable[[], bool] = field(default=lambda: True)
    description: str = ""
    tier: ConformanceTier = ConformanceTier.EXACT
    tolerance: ValueTolerance = EXACT_TOLERANCE


_REGISTRY: Dict[str, _Entry] = {}
_INSTANCES: Dict[str, KernelSet] = {}
_DEFAULT_NAME: Optional[str] = None


def register_backend(
    name: str,
    factory: Optional[Callable[[], KernelSet]] = None,
    *,
    available: Optional[Callable[[], bool]] = None,
    description: str = "",
    tier: Union[ConformanceTier, str] = ConformanceTier.EXACT,
    tolerance: Optional[ValueTolerance] = None,
    replace: bool = False,
):
    """Register ``factory`` (returning a :class:`KernelSet`) as ``name``.

    Usable directly or as a class decorator::

        @register_backend("mybackend", description="...")
        class MyKernelSet(KernelSet): ...

    Parameters
    ----------
    name:
        Registry key; also what ``REPRO_BACKEND`` / ``--backend`` accept.
    factory:
        Zero-argument callable producing the kernel set (a ``KernelSet``
        subclass works — classes are their own factories).  Instantiated
        lazily on first :func:`get_backend` and cached per process.
    available:
        Optional probe; when it returns False the backend stays listed
        under ``list_backends(available_only=False)`` but cannot be
        instantiated (optional-dependency gating).
    description:
        One line for ``list_backends`` consumers and help text.
    tier:
        Declared :class:`ConformanceTier` (or its string value).  EXACT
        promises byte-identity with the numpy reference; FAST_MATH only
        promises byte-identical *structure* plus values within
        ``tolerance``.  Exact-mode resolution refuses FAST_MATH entries.
    tolerance:
        Declared :class:`ValueTolerance` for FAST_MATH backends; defaults
        to :data:`DEFAULT_FAST_MATH_TOLERANCE` (and to the all-zero
        :data:`EXACT_TOLERANCE` for EXACT registrations).
    replace:
        Allow overwriting an existing registration (tests).
    """
    tier = ConformanceTier.coerce(tier)
    if tolerance is None:
        tolerance = (
            DEFAULT_FAST_MATH_TOLERANCE
            if tier is ConformanceTier.FAST_MATH
            else EXACT_TOLERANCE
        )

    def _register(fac):
        if name in _REGISTRY and not replace:
            raise InvalidInputError(f"backend {name!r} is already registered")
        _REGISTRY[name] = _Entry(
            name=name,
            factory=fac,
            available=available or (lambda: True),
            description=description,
            tier=tier,
            tolerance=tolerance,
        )
        _INSTANCES.pop(name, None)
        return fac

    if factory is None:
        return _register
    return _register(factory)


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for test cleanup).

    The ``numpy`` reference cannot be removed — the pipeline's default
    resolution and the conformance suite both anchor on it.
    """
    if name == DEFAULT_BACKEND:
        raise InvalidInputError("the numpy reference backend cannot be unregistered")
    _REGISTRY.pop(name, None)
    _INSTANCES.pop(name, None)
    global _DEFAULT_NAME
    if _DEFAULT_NAME == name:
        _DEFAULT_NAME = None


def backend_available(name: str) -> bool:
    """True when ``name`` is registered and its availability probe passes."""
    entry = _REGISTRY.get(name)
    return entry is not None and bool(entry.available())


def list_backends(
    available_only: bool = True,
    tier: Union[None, ConformanceTier, str] = None,
) -> List[str]:
    """Registered backend names, sorted; ``numpy`` always first.

    ``available_only`` (default) filters out registrations whose
    optional dependency is missing on this machine.  ``tier`` restricts
    the listing to one conformance tier (e.g. the exact-only set an
    exact-mode caller may choose from).
    """
    want = None if tier is None else ConformanceTier.coerce(tier)
    names = [
        n
        for n, e in _REGISTRY.items()
        if (not available_only or e.available())
        and (want is None or e.tier is want)
    ]
    names.sort(key=lambda n: (n != DEFAULT_BACKEND, n))
    return names


def backend_tier(name: str) -> ConformanceTier:
    """The :class:`ConformanceTier` declared for ``name`` at registration.

    Works without instantiating the backend (and therefore without its
    optional dependency); unknown names raise
    :class:`~repro.errors.InvalidInputError`.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise InvalidInputError(
            f"unknown backend {name!r}; registered: {list_backends(available_only=False)}"
        )
    return entry.tier


def backend_tolerance(name: str) -> ValueTolerance:
    """The :class:`ValueTolerance` declared for ``name`` at registration."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise InvalidInputError(
            f"unknown backend {name!r}; registered: {list_backends(available_only=False)}"
        )
    return entry.tolerance


def get_backend(name: str) -> KernelSet:
    """The (per-process cached) kernel set registered as ``name``.

    Raises :class:`~repro.errors.InvalidInputError` for unknown names and
    for registered-but-unavailable backends, naming the alternatives.
    """
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    entry = _REGISTRY.get(name)
    if entry is None:
        raise InvalidInputError(
            f"unknown backend {name!r}; registered: {list_backends(available_only=False)}"
        )
    if not entry.available():
        raise InvalidInputError(
            f"backend {name!r} is registered but unavailable on this machine "
            f"(missing optional dependency); available: {list_backends()}"
        )
    inst = entry.factory()
    if not isinstance(inst, KernelSet):
        raise InvalidInputError(
            f"backend {name!r} factory returned {type(inst).__name__}, "
            "expected a KernelSet"
        )
    inst.name = name
    inst.tier = entry.tier
    inst.tolerance = entry.tolerance
    _INSTANCES[name] = inst
    return inst


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the process-default backend.

    Returns the previous default name so callers can restore it.  The
    default is per-process module state: it does **not** survive into
    spawned pool workers, which fall back to ``REPRO_BACKEND`` — pass an
    explicit backend (the engines thread the resolved *name* through)
    when the choice must cross processes.
    """
    global _DEFAULT_NAME
    if name is not None:
        get_backend(name)  # validate eagerly
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


def default_backend_name() -> str:
    """The name :func:`resolve_backend` would use with no explicit spec."""
    if _DEFAULT_NAME is not None:
        return _DEFAULT_NAME
    env = os.environ.get(ENV_BACKEND, "").strip()
    return env or DEFAULT_BACKEND


def resolve_backend(
    spec: Union[None, str, KernelSet] = None,
    *,
    tier: Union[None, ConformanceTier, str] = None,
) -> KernelSet:
    """Resolve a backend spec to a kernel set.

    ``spec`` may be a :class:`KernelSet` instance (returned as-is after
    the tier gate), a registered name, or ``None`` — which walks the
    precedence chain: process default, then ``REPRO_BACKEND``, then
    ``numpy``.

    ``tier`` is the *caller's requirement*, not a preference:
    ``tier=ConformanceTier.EXACT`` means "I need byte-reproducible
    values", and a resolution that lands on a FAST_MATH backend then
    fails loudly instead of silently relaxing the guarantee — with
    :class:`~repro.errors.ConfigurationError` naming ``REPRO_BACKEND``
    when the offending name came from the environment, and the generic
    :class:`~repro.errors.InvalidInputError` when it was passed
    explicitly.  ``tier=None`` (the default) accepts any tier, which is
    the opt-in for fast-math kernels.

    A name that came from the ``REPRO_BACKEND`` environment variable and
    fails to resolve raises :class:`~repro.errors.ConfigurationError`
    naming the variable (exit code 10 at the CLI) instead of the generic
    invalid-input error an explicit argument gets.
    """
    required = None if tier is None else ConformanceTier.coerce(tier)

    def _gate(inst: KernelSet, from_env: bool) -> KernelSet:
        if required is ConformanceTier.EXACT and inst.tier is not ConformanceTier.EXACT:
            msg = (
                f"backend {inst.name!r} is declared {inst.tier.value!r} but the "
                f"caller requires the exact (byte-identity) conformance tier; "
                f"exact-tier backends: {list_backends(tier=ConformanceTier.EXACT)}"
            )
            if from_env:
                raise ConfigurationError(msg, source=ENV_BACKEND)
            raise InvalidInputError(msg)
        return inst

    if isinstance(spec, KernelSet):
        return _gate(spec, from_env=False)
    from_env = False
    if spec is None:
        from_env = _DEFAULT_NAME is None and bool(
            os.environ.get(ENV_BACKEND, "").strip()
        )
        spec = default_backend_name()
    if not isinstance(spec, str):
        raise InvalidInputError(
            f"backend spec must be a name or KernelSet, got {type(spec).__name__}"
        )
    try:
        return _gate(get_backend(spec), from_env)
    except ConfigurationError:
        raise
    except InvalidInputError as exc:
        if from_env:
            raise ConfigurationError(str(exc), source=ENV_BACKEND) from exc
        raise


def resolve_backend_name(
    spec: Union[None, str, KernelSet] = None,
    *,
    tier: Union[None, ConformanceTier, str] = None,
) -> str:
    """Like :func:`resolve_backend` but returns the registry name — the
    pickle-safe form the parallel engine ships to pool workers."""
    return resolve_backend(spec, tier=tier).name


@contextmanager
def use_backend(name: Optional[str]):
    """Scoped :func:`set_default_backend`; yields the active kernel set."""
    previous = set_default_backend(name)
    try:
        yield resolve_backend(None)
    finally:
        set_default_backend(previous)


# ---------------------------------------------------------------- in-tree
def _register_builtin_backends() -> None:
    from repro.backend.accel import NumbaKernelSet, NumbaParKernelSet, numba_available
    from repro.backend.fragment import FragmentKernelSet
    from repro.backend.numpy_backend import NumpyKernelSet
    from repro.backend.pyloops import PyLoopsKernelSet

    register_backend(
        DEFAULT_BACKEND,
        NumpyKernelSet,
        description="vectorised NumPy reference (always available)",
        replace=True,
    )
    register_backend(
        "pyloops",
        PyLoopsKernelSet,
        description="pure-Python scalar loops — slow differential oracle",
        replace=True,
    )
    register_backend(
        "numba",
        NumbaKernelSet,
        available=numba_available,
        description="Numba-JIT scalar loops (requires the numba package)",
        replace=True,
    )
    register_backend(
        "numba-par",
        NumbaParKernelSet,
        available=numba_available,
        description=(
            "Numba prange+fastmath kernels — tier-2 fast-math "
            "(requires the numba package)"
        ),
        tier=ConformanceTier.FAST_MATH,
        replace=True,
    )
    register_backend(
        "fragment",
        FragmentKernelSet,
        description=(
            "batched 16-wide fragment accumulator modelling the "
            "tensor-core dense path — tier-2 fast-math"
        ),
        tier=ConformanceTier.FAST_MATH,
        replace=True,
    )


_register_builtin_backends()
