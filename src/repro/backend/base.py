"""The ``KernelSet`` contract: the hot inner kernels of the tile pipeline.

TileSpGEMM's three steps spend essentially all of their time in four
primitive kernels, and everything else (pair enumeration, chunking,
stitching, bookkeeping) is orchestration around them:

* **mask OR-accumulate** (:meth:`KernelSet.mask_or_into`) — step 2's
  ``AtomicOr``: every nonzero of an ``A`` tile ORs a ``B`` row mask onto
  a ``C`` row mask;
* **popcount** (:meth:`KernelSet.popcount`) and **popcount rank**
  (:meth:`KernelSet.prefix_popcount`) — the paper's ``__popc`` uses:
  per-row nonzero counts and the sparse accumulator's within-row offset;
* **scatter-add numeric accumulate** (:meth:`KernelSet.scatter_add_into`)
  — step 3's ``AtomicAdd`` over expanded products;
* **tile compaction** (:meth:`KernelSet.nth_set_bit`) — converting the
  symbolic masks back into compacted local column indices.

A *backend* is one implementation of these five methods.  The registry
(:mod:`repro.backend`) lets the same pipeline run on any of them, and the
conformance suite (``tests/test_backend_conformance.py``) enforces the
contract below.

Conformance contract
--------------------
Backends are interchangeable only if they are **byte-identical** to the
``numpy`` reference, not merely numerically close:

* ``popcount``, ``prefix_popcount`` and ``nth_set_bit`` return ``uint8``
  arrays with the reference's shapes and sentinel values (``nth_set_bit``
  yields 255 for ranks at or beyond the mask's popcount);
* ``mask_or_into`` must be an unbuffered OR scatter (OR is idempotent and
  commutative, so any ordering is conformant);
* ``scatter_add_into(out, positions, weights)`` must equal
  ``out += np.bincount(positions, weights, minlength=out.size)`` down to
  the last bit: accumulate the weights *in input order* into a fresh
  zero buffer, then add the buffer onto ``out`` elementwise.  Both the
  input-order partial sums and the separate final add are observable in
  the float64 results; a backend that adds directly into ``out`` (or
  reassociates the partial sums) produces values that differ in the last
  ulp and fails conformance.

Every kernel invocation ticks ``KernelSet.calls[<kernel>]``; the tests
and benches use the counters to prove which backend actually executed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["KernelSet", "KERNEL_NAMES"]

#: The kernel methods every backend must provide (and counts calls of).
KERNEL_NAMES = (
    "mask_or_into",
    "popcount",
    "prefix_popcount",
    "nth_set_bit",
    "scatter_add_into",
)


class KernelSet:
    """Base class for a named set of TileSpGEMM inner kernels.

    Subclasses set :attr:`name` and implement the five kernels; the
    module docstring states the exact conformance contract.  The base
    class only provides the per-kernel call counters.
    """

    #: Registry name of the backend (``numpy``, ``pyloops``, ...).
    name: str = "abstract"

    def __init__(self) -> None:
        #: Number of invocations per kernel since construction (or the
        #: last :meth:`reset_calls`); proof-of-execution for the tests.
        self.calls: Dict[str, int] = {k: 0 for k in KERNEL_NAMES}

    def _tick(self, kernel: str) -> None:
        self.calls[kernel] = self.calls.get(kernel, 0) + 1

    def reset_calls(self) -> None:
        """Zero the per-kernel invocation counters."""
        for k in self.calls:
            self.calls[k] = 0

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    # ------------------------------------------------------------ kernels
    def mask_or_into(
        self, out: np.ndarray, positions: np.ndarray, masks: np.ndarray
    ) -> None:
        """OR-accumulate ``masks`` into ``out`` at ``positions`` (step 2).

        ``out`` is the flattened ``(num_c_tiles, T)`` mask array; repeated
        positions must all land (the ``AtomicOr`` semantics).
        """
        raise NotImplementedError

    def popcount(self, masks: np.ndarray) -> np.ndarray:
        """Set-bit count of each 16-bit mask, as ``uint8`` of same shape."""
        raise NotImplementedError

    def prefix_popcount(self, masks: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Rank of bit ``cols`` in ``masks``: set bits strictly below it."""
        raise NotImplementedError

    def nth_set_bit(self, masks: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Column of the ``ranks``-th set bit (255 when out of range)."""
        raise NotImplementedError

    def scatter_add_into(
        self, out: np.ndarray, positions: np.ndarray, weights: np.ndarray
    ) -> None:
        """``out += bincount(positions, weights, minlength=out.size)``.

        The partial sums must be accumulated in input order into a fresh
        zero buffer which is then added onto ``out`` — see the module
        docstring's conformance contract.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelSet {self.name!r}>"
