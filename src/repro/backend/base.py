"""The ``KernelSet`` contract: the hot inner kernels of the tile pipeline.

TileSpGEMM's three steps spend essentially all of their time in four
primitive kernels, and everything else (pair enumeration, chunking,
stitching, bookkeeping) is orchestration around them:

* **mask OR-accumulate** (:meth:`KernelSet.mask_or_into`) — step 2's
  ``AtomicOr``: every nonzero of an ``A`` tile ORs a ``B`` row mask onto
  a ``C`` row mask;
* **popcount** (:meth:`KernelSet.popcount`) and **popcount rank**
  (:meth:`KernelSet.prefix_popcount`) — the paper's ``__popc`` uses:
  per-row nonzero counts and the sparse accumulator's within-row offset;
* **scatter-add numeric accumulate** (:meth:`KernelSet.scatter_add_into`)
  — step 3's ``AtomicAdd`` over expanded products;
* **tile compaction** (:meth:`KernelSet.nth_set_bit`) — converting the
  symbolic masks back into compacted local column indices.

A *backend* is one implementation of these five methods.  The registry
(:mod:`repro.backend`) lets the same pipeline run on any of them, and the
conformance suite (``tests/test_backend_conformance.py``) enforces the
contract below.

Conformance tiers
-----------------
Every backend declares a :class:`ConformanceTier` at registration:

* :attr:`ConformanceTier.EXACT` (tier 1) — the original byte-identity
  contract below.  All eight result arrays, values included, must equal
  the ``numpy`` reference bit for bit.
* :attr:`ConformanceTier.FAST_MATH` (tier 2) — *structure* (tile
  pointers, row/column indices, masks, the dense/sparse accumulator
  split) must still be byte-identical, but the ``val`` array is only
  required to stay within the backend's declared
  :class:`ValueTolerance` of the reference.  This is what admits
  kernels that reassociate floating-point accumulation — ``prange`` +
  ``fastmath`` loops, batched 16×16 fragment accumulators — which the
  byte-identity contract deliberately locks out.

Structure identity is non-negotiable in both tiers because every
downstream consumer (chunk stitching, the serve tier's cost accounting,
the differential suite) indexes results positionally.  Callers that need
bit-reproducible *values* request :attr:`ConformanceTier.EXACT` when
resolving a backend; resolution then refuses fast-math backends loudly
instead of silently degrading.

Conformance contract (tier 1)
-----------------------------
Exact-tier backends are interchangeable only if they are
**byte-identical** to the ``numpy`` reference, not merely numerically
close:

* ``popcount``, ``prefix_popcount`` and ``nth_set_bit`` return ``uint8``
  arrays with the reference's shapes and sentinel values (``nth_set_bit``
  yields 255 for ranks at or beyond the mask's popcount);
* ``mask_or_into`` must be an unbuffered OR scatter (OR is idempotent and
  commutative, so any ordering is conformant);
* ``scatter_add_into(out, positions, weights)`` must equal
  ``out += np.bincount(positions, weights, minlength=out.size)`` down to
  the last bit: accumulate the weights *in input order* into a fresh
  zero buffer, then add the buffer onto ``out`` elementwise.  Both the
  input-order partial sums and the separate final add are observable in
  the float64 results; a backend that adds directly into ``out`` (or
  reassociates the partial sums) produces values that differ in the last
  ulp and fails conformance.

Every kernel invocation ticks ``KernelSet.calls[<kernel>]``; the tests
and benches use the counters to prove which backend actually executed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = [
    "ConformanceTier",
    "ValueTolerance",
    "EXACT_TOLERANCE",
    "DEFAULT_FAST_MATH_TOLERANCE",
    "KernelSet",
    "KERNEL_NAMES",
]

#: The kernel methods every backend must provide (and counts calls of).
KERNEL_NAMES = (
    "mask_or_into",
    "popcount",
    "prefix_popcount",
    "nth_set_bit",
    "scatter_add_into",
)


class ConformanceTier(str, enum.Enum):
    """The two conformance classes a backend can be registered under.

    A ``str`` enum so the tier round-trips through stats dicts, plan
    ``to_dict()`` serialisation and JSON without special casing:
    ``ConformanceTier.EXACT == "exact"`` holds.
    """

    #: Tier 1 — all eight result arrays byte-identical to ``numpy``.
    EXACT = "exact"
    #: Tier 2 — structure byte-identical, values within :class:`ValueTolerance`.
    FAST_MATH = "fast-math"

    @classmethod
    def coerce(cls, value: "ConformanceTier | str") -> "ConformanceTier":
        """Accept a member or its string value (``"exact"``/``"fast-math"``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown conformance tier {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


@dataclass(frozen=True)
class ValueTolerance:
    """The value-error bound a fast-math backend declares at registration.

    An element ``got`` passes against reference ``ref`` when *any* of:

    * the bit patterns are identical (always true for tier 1);
    * the ULP distance is at most :attr:`max_ulp`;
    * ``|got - ref| <= atol + rtol * max(|ref|, scale)``, where ``scale``
      is the caller-supplied accumulation magnitude — for SpGEMM the
      per-element ``(|A| @ |B|)`` sum of absolute products, the natural
      yardstick for reordered-summation error (``n·eps·Σ|products|``).
      The scale term is what keeps catastrophic-cancellation outputs
      (tiny ``ref``, legitimately larger absolute error) honest without
      loosening the bound everywhere else.

    The exact tier uses the all-zero :data:`EXACT_TOLERANCE`, which only
    the bit-identity clause can satisfy.
    """

    max_ulp: int = 0
    rtol: float = 0.0
    atol: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"max_ulp": int(self.max_ulp), "rtol": self.rtol, "atol": self.atol}


#: Tier-1 bound: nothing but bit identity passes.
EXACT_TOLERANCE = ValueTolerance()

#: Default tier-2 bound.  Reassociating a float64 accumulation of n
#: products perturbs the sum by at most ~log2(n)·eps relative to
#: Σ|products|; 1e-11 (≈ 45000 eps) covers every corpus case with two
#: orders of magnitude to spare, while max_ulp=1024 admits last-ulps
#: jitter on well-conditioned sums without consulting the scale.
DEFAULT_FAST_MATH_TOLERANCE = ValueTolerance(max_ulp=1024, rtol=1e-11)


class KernelSet:
    """Base class for a named set of TileSpGEMM inner kernels.

    Subclasses set :attr:`name` and implement the five kernels; the
    module docstring states the exact conformance contract.  The base
    class only provides the per-kernel call counters.
    """

    #: Registry name of the backend (``numpy``, ``pyloops``, ...).
    name: str = "abstract"

    #: Conformance class; overridden per backend and stamped from the
    #: registry entry on instantiation (the registration wins).
    tier: ConformanceTier = ConformanceTier.EXACT

    #: Declared value bound; only consulted for FAST_MATH backends.
    tolerance: ValueTolerance = EXACT_TOLERANCE

    def __init__(self) -> None:
        #: Number of invocations per kernel since construction (or the
        #: last :meth:`reset_calls`); proof-of-execution for the tests.
        self.calls: Dict[str, int] = {k: 0 for k in KERNEL_NAMES}

    def _tick(self, kernel: str) -> None:
        self.calls[kernel] = self.calls.get(kernel, 0) + 1

    def reset_calls(self) -> None:
        """Zero the per-kernel invocation counters."""
        for k in self.calls:
            self.calls[k] = 0

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    # ------------------------------------------------------------ kernels
    def mask_or_into(
        self, out: np.ndarray, positions: np.ndarray, masks: np.ndarray
    ) -> None:
        """OR-accumulate ``masks`` into ``out`` at ``positions`` (step 2).

        ``out`` is the flattened ``(num_c_tiles, T)`` mask array; repeated
        positions must all land (the ``AtomicOr`` semantics).
        """
        raise NotImplementedError

    def popcount(self, masks: np.ndarray) -> np.ndarray:
        """Set-bit count of each 16-bit mask, as ``uint8`` of same shape."""
        raise NotImplementedError

    def prefix_popcount(self, masks: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Rank of bit ``cols`` in ``masks``: set bits strictly below it."""
        raise NotImplementedError

    def nth_set_bit(self, masks: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Column of the ``ranks``-th set bit (255 when out of range)."""
        raise NotImplementedError

    def scatter_add_into(
        self, out: np.ndarray, positions: np.ndarray, weights: np.ndarray
    ) -> None:
        """``out += bincount(positions, weights, minlength=out.size)``.

        The partial sums must be accumulated in input order into a fresh
        zero buffer which is then added onto ``out`` — see the module
        docstring's conformance contract.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelSet {self.name!r}>"
