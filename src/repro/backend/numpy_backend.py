"""The ``numpy`` backend: the always-registered vectorised reference.

These are exactly the kernels the pipeline ran before the backend seam
existed — thin wrappers over :mod:`repro.util.bits` lookup tables and the
``np.bitwise_or.at`` / ``np.bincount`` scatters — so the reference
backend *defines* the byte-level conformance contract rather than merely
satisfying it.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import KernelSet
from repro.util.bits import nth_set_bit, popcount16, prefix_popcount

__all__ = ["NumpyKernelSet"]


class NumpyKernelSet(KernelSet):
    """Vectorised NumPy kernels (lookup tables + ufunc scatters)."""

    name = "numpy"

    def mask_or_into(self, out, positions, masks):
        self._tick("mask_or_into")
        np.bitwise_or.at(out, positions, masks)

    def popcount(self, masks):
        self._tick("popcount")
        return popcount16(masks)

    def prefix_popcount(self, masks, cols):
        self._tick("prefix_popcount")
        return prefix_popcount(masks, cols)

    def nth_set_bit(self, masks, ranks):
        self._tick("nth_set_bit")
        return nth_set_bit(masks, ranks)

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        out += np.bincount(positions, weights=weights, minlength=out.size)
