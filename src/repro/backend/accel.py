"""The optional ``numba`` backend: JIT-compiled scalar kernels.

Registered only when :mod:`numba` is importable (the registry probes
:func:`numba_available`); on machines without it, ``list_backends()``
simply omits ``"numba"`` and the conformance suite skips it.

The kernels are *sequential* compiled loops, not ``prange`` + atomics,
on purpose: parallel atomic float adds reorder the partial sums between
runs, and the conformance contract (:mod:`repro.backend.base`) demands
byte-identical float64 results.  A fixed input-order accumulation into a
fresh buffer — the same operation sequence as ``np.bincount`` — is both
deterministic and conformant, and the JIT still removes the Python
interpreter overhead that makes ``pyloops`` slow.  ``fastmath`` stays
off for the same reason: reassociation would change the last ulp.

A CuPy backend is deliberately *not* shipped: ``cupyx.scatter_add`` runs
on GPU atomics whose accumulation order is nondeterministic, so it
cannot meet the byte-identity contract (it would need a sort-and-segment
rewrite of step 3, a different project).  See ``docs/BACKENDS.md``.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.base import KernelSet

__all__ = ["NumbaKernelSet", "numba_available"]


def numba_available() -> bool:
    """True when the ``numba`` package can be imported."""
    return importlib.util.find_spec("numba") is not None


def _compile_kernels():
    """JIT-compile the scalar kernels (deferred so import stays cheap)."""
    from numba import njit

    @njit(cache=True)
    def mask_or(out, positions, masks):
        for i in range(positions.size):
            out[positions[i]] |= masks[i]

    @njit(cache=True)
    def popcount(flat, out):
        for i in range(flat.size):
            m = flat[i]
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True)
    def prefix_popcount(masks, cols, out):
        for i in range(masks.size):
            m = masks[i] & ((1 << cols[i]) - 1)
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True)
    def nth_set_bit(masks, ranks, out):
        for i in range(masks.size):
            m = masks[i]
            r = ranks[i]
            col = 255
            seen = 0
            for c in range(16):
                if m & (1 << c):
                    if seen == r:
                        col = c
                        break
                    seen += 1
            out[i] = col

    @njit(cache=True)
    def scatter_add(out, positions, weights):
        # Fresh buffer + input-order accumulation + one final add: the
        # np.bincount operation sequence, hence byte-identical results.
        buf = np.zeros(out.size, dtype=out.dtype)
        for i in range(positions.size):
            buf[positions[i]] += weights[i]
        for j in range(out.size):
            out[j] += buf[j]

    return mask_or, popcount, prefix_popcount, nth_set_bit, scatter_add


class NumbaKernelSet(KernelSet):
    """Numba-JIT scalar kernels (sequential, byte-identical by design)."""

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        (
            self._mask_or,
            self._popcount,
            self._prefix_popcount,
            self._nth_set_bit,
            self._scatter_add,
        ) = _compile_kernels()

    def mask_or_into(self, out, positions, masks):
        self._tick("mask_or_into")
        self._mask_or(
            out,
            np.ascontiguousarray(positions, dtype=np.int64),
            np.ascontiguousarray(masks, dtype=out.dtype),
        )

    def popcount(self, masks):
        self._tick("popcount")
        arr = np.ascontiguousarray(masks, dtype=np.uint32)
        out = np.empty(arr.size, dtype=np.uint8)
        self._popcount(arr.reshape(-1), out)
        return out.reshape(np.asarray(masks).shape)

    def prefix_popcount(self, masks, cols):
        self._tick("prefix_popcount")
        m_arr, c_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(cols))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        c_flat = np.ascontiguousarray(c_arr, dtype=np.uint32).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._prefix_popcount(m_flat, c_flat, out)
        return out.reshape(shape)

    def nth_set_bit(self, masks, ranks):
        self._tick("nth_set_bit")
        m_arr, r_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(ranks))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        r_flat = np.ascontiguousarray(r_arr, dtype=np.int64).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._nth_set_bit(m_flat, r_flat, out)
        return out.reshape(shape)

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        self._scatter_add(
            out,
            np.ascontiguousarray(positions, dtype=np.int64),
            np.ascontiguousarray(weights, dtype=out.dtype),
        )
