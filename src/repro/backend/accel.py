"""The optional ``numba`` backends: JIT-compiled kernels, one per tier.

Registered only when :func:`numba_available` passes — a cached probe
that actually compiles a trivial ``njit`` function, so a half-installed
numba (package present, llvmlite broken, unsupported interpreter)
degrades to "backend absent" instead of erroring at first kernel call.

Two kernel sets live here:

* :class:`NumbaKernelSet` (``numba``, tier 1) — *sequential* compiled
  loops, not ``prange`` + atomics, on purpose: parallel atomic float
  adds reorder the partial sums between runs, and the exact-tier
  conformance contract (:mod:`repro.backend.base`) demands
  byte-identical float64 results.  A fixed input-order accumulation into
  a fresh buffer — the same operation sequence as ``np.bincount`` — is
  both deterministic and conformant, and the JIT still removes the
  Python interpreter overhead that makes ``pyloops`` slow.  ``fastmath``
  stays off for the same reason: reassociation would change the last
  ulp.
* :class:`NumbaParKernelSet` (``numba-par``, tier 2) — ``prange`` +
  ``fastmath`` variants unlocked by the FAST_MATH conformance tier.
  The scatters are *sort-and-segment*, not atomics: the coordinator
  stable-sorts the scatter positions once in NumPy, and the compiled
  kernel then ``prange``-s over the distinct output positions, each
  thread summing its own position's weights privately.  That keeps the
  kernels race-free and run-to-run deterministic (each segment is
  reduced by exactly one thread in a fixed order); the only tier-2
  liberty actually exercised is ``fastmath`` vectorising the per-segment
  reductions, which reassociates partial sums within a segment.
  Structure kernels (popcount, rank, compaction) are integer-exact and
  remain byte-identical — only ``val`` can drift, which is precisely
  what the tier-2 contract tolerates.

A CuPy backend is still deliberately *not* shipped even at tier 2:
``cupyx.scatter_add`` runs on GPU atomics whose accumulation order is
nondeterministic *between runs*, which would break the tier-2 promise
that structure and values are reproducible for a fixed seed.  See
``docs/BACKENDS.md``.
"""

from __future__ import annotations

import importlib.util
from typing import Optional

import numpy as np

from repro.backend.base import ConformanceTier, KernelSet

__all__ = ["NumbaKernelSet", "NumbaParKernelSet", "numba_available"]


#: Cached result of the compile probe (None = not probed yet).
_NUMBA_OK: Optional[bool] = None


def numba_available() -> bool:
    """True when ``numba`` imports *and* a trivial ``njit`` compiles.

    ``find_spec`` alone is not enough: a package directory can be
    present while the import (llvmlite ABI mismatch, unsupported
    Python) or the first compilation fails.  Probing one real ``njit``
    compile catches all of those up front; the verdict is cached for
    the life of the process (:func:`_reset_numba_probe` clears it for
    tests).
    """
    global _NUMBA_OK
    if _NUMBA_OK is not None:
        return _NUMBA_OK
    if importlib.util.find_spec("numba") is None:
        _NUMBA_OK = False
        return False
    try:
        from numba import njit

        probe = njit(cache=False)(lambda x: x + 1)
        if probe(1) != 2:
            raise RuntimeError("numba njit probe returned a wrong value")
    except Exception:
        _NUMBA_OK = False
    else:
        _NUMBA_OK = True
    return _NUMBA_OK


def _reset_numba_probe(value: Optional[bool] = None) -> None:
    """Reset (or force) the cached probe verdict — test hook only."""
    global _NUMBA_OK
    _NUMBA_OK = value


def _compile_kernels():
    """JIT-compile the scalar kernels (deferred so import stays cheap)."""
    from numba import njit

    @njit(cache=True)
    def mask_or(out, positions, masks):
        for i in range(positions.size):
            out[positions[i]] |= masks[i]

    @njit(cache=True)
    def popcount(flat, out):
        for i in range(flat.size):
            m = flat[i]
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True)
    def prefix_popcount(masks, cols, out):
        for i in range(masks.size):
            m = masks[i] & ((1 << cols[i]) - 1)
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True)
    def nth_set_bit(masks, ranks, out):
        for i in range(masks.size):
            m = masks[i]
            r = ranks[i]
            col = 255
            seen = 0
            for c in range(16):
                if m & (1 << c):
                    if seen == r:
                        col = c
                        break
                    seen += 1
            out[i] = col

    @njit(cache=True)
    def scatter_add(out, positions, weights):
        # Fresh buffer + input-order accumulation + one final add: the
        # np.bincount operation sequence, hence byte-identical results.
        buf = np.zeros(out.size, dtype=out.dtype)
        for i in range(positions.size):
            buf[positions[i]] += weights[i]
        for j in range(out.size):
            out[j] += buf[j]

    return mask_or, popcount, prefix_popcount, nth_set_bit, scatter_add


def _compile_par_kernels():
    """JIT-compile the ``prange`` + ``fastmath`` tier-2 kernels."""
    from numba import njit, prange

    @njit(cache=True, parallel=True)
    def popcount(flat, out):
        for i in prange(flat.size):
            m = flat[i]
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True, parallel=True)
    def prefix_popcount(masks, cols, out):
        for i in prange(masks.size):
            m = masks[i] & ((1 << cols[i]) - 1)
            c = 0
            while m:
                c += m & 1
                m >>= 1
            out[i] = c

    @njit(cache=True, parallel=True)
    def nth_set_bit(masks, ranks, out):
        for i in prange(masks.size):
            m = masks[i]
            r = ranks[i]
            col = 255
            seen = 0
            for c in range(16):
                if m & (1 << c):
                    if seen == r:
                        col = c
                        break
                    seen += 1
            out[i] = col

    @njit(cache=True, parallel=True)
    def seg_or(out, uniq, starts, ends, order, masks):
        # One segment (= one distinct output position) per iteration, so
        # no two threads ever touch the same out slot: race-free without
        # atomics.  OR is order-insensitive anyway.
        for s in prange(uniq.size):
            acc = out[uniq[s]]
            for k in range(starts[s], ends[s]):
                acc |= masks[order[k]]
            out[uniq[s]] = acc

    @njit(cache=True, parallel=True, fastmath=True)
    def seg_add(out, uniq, starts, ends, order, weights):
        # Fresh per-segment accumulator summed in stable input order,
        # then one add onto out — the bincount sequence per position.
        # fastmath may vectorise (reassociate) the inner reduction:
        # that is the declared tier-2 liberty.
        for s in prange(uniq.size):
            acc = 0.0
            for k in range(starts[s], ends[s]):
                acc += weights[order[k]]
            out[uniq[s]] += acc

    return popcount, prefix_popcount, nth_set_bit, seg_or, seg_add


def _sorted_segments(positions: np.ndarray):
    """Stable-sort ``positions`` and return the per-position segments.

    Returns ``(order, uniq, starts, ends)`` where ``order`` is the
    stable permutation sorting ``positions``, ``uniq`` the distinct
    positions, and ``positions[order[starts[s]:ends[s]]] == uniq[s]``.
    The stable sort preserves input order *within* each segment, so a
    sequential per-segment reduction reproduces bincount's partial sums
    exactly; parallelism comes from segments being independent.
    """
    order = np.argsort(positions, kind="stable")
    sp = positions[order]
    starts = np.flatnonzero(np.r_[True, sp[1:] != sp[:-1]])
    ends = np.r_[starts[1:], sp.size]
    return order, sp[starts], starts, ends


class NumbaKernelSet(KernelSet):
    """Numba-JIT scalar kernels (sequential, byte-identical by design)."""

    name = "numba"
    tier = ConformanceTier.EXACT

    def __init__(self) -> None:
        super().__init__()
        (
            self._mask_or,
            self._popcount,
            self._prefix_popcount,
            self._nth_set_bit,
            self._scatter_add,
        ) = _compile_kernels()

    def mask_or_into(self, out, positions, masks):
        self._tick("mask_or_into")
        self._mask_or(
            out,
            np.ascontiguousarray(positions, dtype=np.int64),
            np.ascontiguousarray(masks, dtype=out.dtype),
        )

    def popcount(self, masks):
        self._tick("popcount")
        arr = np.ascontiguousarray(masks, dtype=np.uint32)
        out = np.empty(arr.size, dtype=np.uint8)
        self._popcount(arr.reshape(-1), out)
        return out.reshape(np.asarray(masks).shape)

    def prefix_popcount(self, masks, cols):
        self._tick("prefix_popcount")
        m_arr, c_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(cols))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        c_flat = np.ascontiguousarray(c_arr, dtype=np.uint32).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._prefix_popcount(m_flat, c_flat, out)
        return out.reshape(shape)

    def nth_set_bit(self, masks, ranks):
        self._tick("nth_set_bit")
        m_arr, r_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(ranks))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        r_flat = np.ascontiguousarray(r_arr, dtype=np.int64).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._nth_set_bit(m_flat, r_flat, out)
        return out.reshape(shape)

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        self._scatter_add(
            out,
            np.ascontiguousarray(positions, dtype=np.int64),
            np.ascontiguousarray(weights, dtype=out.dtype),
        )


class NumbaParKernelSet(KernelSet):
    """Numba ``prange`` + ``fastmath`` kernels (tier 2 — fast-math).

    Elementwise kernels parallelise trivially; the two scatters go
    through :func:`_sorted_segments` so each distinct output position is
    reduced by exactly one ``prange`` iteration (race-free, repeatable).
    """

    name = "numba-par"
    tier = ConformanceTier.FAST_MATH

    def __init__(self) -> None:
        super().__init__()
        (
            self._popcount,
            self._prefix_popcount,
            self._nth_set_bit,
            self._seg_or,
            self._seg_add,
        ) = _compile_par_kernels()

    def mask_or_into(self, out, positions, masks):
        self._tick("mask_or_into")
        pos = np.ascontiguousarray(positions, dtype=np.int64).reshape(-1)
        if pos.size == 0:
            return
        m = np.ascontiguousarray(
            np.broadcast_to(np.asarray(masks, dtype=out.dtype), pos.shape)
        )
        order, uniq, starts, ends = _sorted_segments(pos)
        self._seg_or(out, uniq, starts, ends, order, m)

    def popcount(self, masks):
        self._tick("popcount")
        arr = np.ascontiguousarray(masks, dtype=np.uint32)
        out = np.empty(arr.size, dtype=np.uint8)
        self._popcount(arr.reshape(-1), out)
        return out.reshape(np.asarray(masks).shape)

    def prefix_popcount(self, masks, cols):
        self._tick("prefix_popcount")
        m_arr, c_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(cols))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        c_flat = np.ascontiguousarray(c_arr, dtype=np.uint32).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._prefix_popcount(m_flat, c_flat, out)
        return out.reshape(shape)

    def nth_set_bit(self, masks, ranks):
        self._tick("nth_set_bit")
        m_arr, r_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(ranks))
        shape = m_arr.shape
        m_flat = np.ascontiguousarray(m_arr, dtype=np.uint32).reshape(-1)
        r_flat = np.ascontiguousarray(r_arr, dtype=np.int64).reshape(-1)
        out = np.empty(m_flat.size, dtype=np.uint8)
        self._nth_set_bit(m_flat, r_flat, out)
        return out.reshape(shape)

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        pos = np.ascontiguousarray(positions, dtype=np.int64).reshape(-1)
        if pos.size == 0:
            return
        w = np.ascontiguousarray(
            np.broadcast_to(np.asarray(weights, dtype=out.dtype), pos.shape)
        )
        order, uniq, starts, ends = _sorted_segments(pos)
        self._seg_add(out, uniq, starts, ends, order, w)
