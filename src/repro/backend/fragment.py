"""The ``fragment`` backend: batched 16-wide fragment accumulation.

Models the tensor-core mapping of Zachariadis et al. (PAPERS.md,
arXiv:2009.14600), where the dense-accumulator path of step 3 is fed to
MMA units as batches of small fixed-shape fragments.  A CPU model of
that execution keeps the *shape* of the computation — products are
packed into zero-padded, 16-wide fragments and reduced by one batched
small-GEMM (an ``np.einsum`` contraction over the stacked fragments) —
without pretending to be a GPU.

Only :meth:`FragmentKernelSet.scatter_add_into` differs from the numpy
reference; the integer structure kernels are inherited bit-for-bit, so
every structural array stays byte-identical and the backend sits in the
FAST_MATH conformance tier purely for its values: summing each output
position's products in padded groups of 16 reassociates the float64
accumulation relative to bincount's strict input order.  The packing is
fully deterministic (stable sort, fixed fragment width), so values are
reproducible run to run — they just differ from the reference in the
last ulps, within the declared :class:`~repro.backend.base.ValueTolerance`.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ConformanceTier
from repro.backend.numpy_backend import NumpyKernelSet

__all__ = ["FragmentKernelSet", "FRAGMENT_WIDTH"]

#: Products per fragment — one tensor-core operand row (16×16 tiles).
FRAGMENT_WIDTH = 16


class FragmentKernelSet(NumpyKernelSet):
    """Tier-2 kernels modelling the tensor-core dense-16×16 path."""

    name = "fragment"
    tier = ConformanceTier.FAST_MATH

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        pos = np.asarray(positions, dtype=np.int64).reshape(-1)
        if pos.size == 0:
            return
        w = np.ascontiguousarray(
            np.broadcast_to(np.asarray(weights, dtype=out.dtype), pos.shape)
        )
        f = FRAGMENT_WIDTH
        # Stable sort groups each output position's products contiguously
        # while preserving their input order (deterministic packing).
        order = np.argsort(pos, kind="stable")
        sp = pos[order]
        sw = w[order]
        starts = np.flatnonzero(np.r_[True, sp[1:] != sp[:-1]])
        lens = np.diff(np.r_[starts, sp.size])
        uniq = sp[starts]
        # Pack every segment into zero-padded fragments of width f.
        frags = -(-lens // f)
        seg_off = np.zeros(uniq.size, dtype=np.int64)
        np.cumsum(frags[:-1] * f, out=seg_off[1:])
        lane = np.arange(sp.size, dtype=np.int64) - np.repeat(starts, lens)
        packed = np.zeros(int(frags.sum()) * f, dtype=out.dtype)
        packed[np.repeat(seg_off, lens) + lane] = sw
        # The batched fragment pass: one 16-wide contraction per
        # fragment, the MMA-accumulate each tensor-core op performs.
        partial = np.einsum(
            "bf,f->b", packed.reshape(-1, f), np.ones(f, dtype=out.dtype)
        )
        # Epilogue: fold each segment's fragment partials together and
        # land them on the output positions with one elementwise add.
        frag_starts = np.zeros(uniq.size, dtype=np.int64)
        np.cumsum(frags[:-1], out=frag_starts[1:])
        out[uniq] += np.add.reduceat(partial, frag_starts)
