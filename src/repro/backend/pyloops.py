"""The ``pyloops`` backend: pure-Python loops, the differential oracle.

Each kernel is written as the most obviously-correct scalar loop — no
lookup tables, no ufunc scatters — so that an error in the vectorised
reference and an error in this oracle are maximally unlikely to
coincide.  It is deliberately slow (orders of magnitude behind
``numpy``) and exists for the conformance and fuzz suites, which demand
*byte-identical* results:

* popcounts are recomputed bit by bit per element;
* ``scatter_add_into`` accumulates Python floats in input order into a
  fresh zero buffer and then adds the buffer onto ``out`` — the same
  IEEE-754 operation sequence as ``out += np.bincount(...)``, which is
  what makes the float64 results match the reference exactly rather
  than just closely.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import KernelSet

__all__ = ["PyLoopsKernelSet"]


def _popcount_int(m: int) -> int:
    return bin(m).count("1")


class PyLoopsKernelSet(KernelSet):
    """Scalar pure-Python kernels (slow, obviously-correct oracle)."""

    name = "pyloops"

    def mask_or_into(self, out, positions, masks):
        self._tick("mask_or_into")
        for p, m in zip(
            np.asarray(positions).tolist(), np.asarray(masks).tolist()
        ):
            out[p] = out[p] | m

    def popcount(self, masks):
        self._tick("popcount")
        arr = np.asarray(masks)
        flat = arr.reshape(-1).tolist()
        counts = [_popcount_int(int(m)) for m in flat]
        return np.asarray(counts, dtype=np.uint8).reshape(arr.shape)

    def prefix_popcount(self, masks, cols):
        self._tick("prefix_popcount")
        m_arr, c_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(cols))
        out = [
            _popcount_int(int(m) & ((1 << int(c)) - 1))
            for m, c in zip(m_arr.reshape(-1).tolist(), c_arr.reshape(-1).tolist())
        ]
        return np.asarray(out, dtype=np.uint8).reshape(m_arr.shape)

    def nth_set_bit(self, masks, ranks):
        self._tick("nth_set_bit")
        m_arr, r_arr = np.broadcast_arrays(np.asarray(masks), np.asarray(ranks))
        out = []
        for m, r in zip(m_arr.reshape(-1).tolist(), r_arr.reshape(-1).tolist()):
            m, r = int(m), int(r)
            col = 255  # the reference tables' out-of-range sentinel
            seen = 0
            for c in range(16):
                if m & (1 << c):
                    if seen == r:
                        col = c
                        break
                    seen += 1
            out.append(col)
        return np.asarray(out, dtype=np.uint8).reshape(m_arr.shape)

    def scatter_add_into(self, out, positions, weights):
        self._tick("scatter_add_into")
        # Fresh zero buffer, input-order accumulation, single final add:
        # the exact operation sequence of `out += np.bincount(...)`.
        buf = [0.0] * int(out.size)
        for p, w in zip(
            np.asarray(positions).tolist(), np.asarray(weights).tolist()
        ):
            buf[p] += w
        out += np.asarray(buf, dtype=out.dtype)
