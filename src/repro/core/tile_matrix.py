"""The paper's two-level sparse tile data structure (Section 3.2).

A :class:`TileMatrix` stores a sparse matrix as a collection of non-empty
fixed-size sparse tiles (16-by-16 in the paper).  Two levels of structure
are kept:

**High level** — the tile layout of the matrix, itself a CSR-like pattern
over tiles:

* ``tileptr``   (``num_tile_rows + 1``): offsets of the tiles of each tile
  row;
* ``tilecolidx`` (``num_tiles``): tile column index of each tile, sorted
  within a tile row;
* ``tilennz``   (``num_tiles + 1``): offsets of each tile's nonzeros in the
  low-level arrays (so ``tilennz[t+1] - tilennz[t]`` is tile ``t``'s
  nonzero count).

**Low level** — the nonzeros of each tile in CSR style with local indices:

* ``rowptr`` (``num_tiles × T`` uint8): per-tile row pointer.  Following
  the paper only ``T`` offsets are stored (not ``T+1``) so every value fits
  0..255; the missing last offset is recovered from ``tilennz``.
* ``rowidx`` / ``colidx`` (``nnz`` uint8): local row/column index of every
  nonzero (4 bits each for ``T = 16``; the paper packs the pair in one
  unsigned char — see :meth:`TileMatrix.packed_local_indices`).
* ``val`` (``nnz`` float64): the numeric values, in tile order, row-major
  within a tile.
* ``mask`` (``num_tiles × T`` uint16): per-tile-row bit masks; bit ``c`` of
  ``mask[t, r]`` is set iff tile ``t`` holds a nonzero at local ``(r, c)``.

The tile size is parameterised (4/8/16/32 supported) so the tile-size
ablation bench can demonstrate why the paper fixes ``T = 16``: it is the
unique size that exactly saturates the uint8 local-index pair and the
uint16 row mask.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.util.bits import popcount16

__all__ = ["TileMatrix", "TILE", "mask_dtype_for"]

#: The paper's tile edge length.
TILE: int = 16

_SUPPORTED_TILE_SIZES = (4, 8, 16, 32)


def mask_dtype_for(tile_size: int) -> np.dtype:
    """Smallest unsigned dtype whose width covers one tile row's mask."""
    if tile_size <= 8:
        return np.dtype(np.uint8)
    if tile_size <= 16:
        return np.dtype(np.uint16)
    if tile_size <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def _rowptr_dtype_for(tile_size: int) -> np.dtype:
    """Dtype of the per-tile row pointer (uint8 up to 256 nnz per tile)."""
    return np.dtype(np.uint8) if tile_size * tile_size <= 256 else np.dtype(np.uint16)


class TileMatrix:
    """A sparse matrix stored as non-empty fixed-size sparse tiles.

    Instances are normally built with :meth:`from_csr` or :meth:`from_coo`;
    the raw-array constructor is for internal use by the SpGEMM steps,
    which assemble ``C`` directly in tiled form.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        tile_size: int,
        tileptr: np.ndarray,
        tilecolidx: np.ndarray,
        tilennz: np.ndarray,
        rowptr: np.ndarray,
        rowidx: np.ndarray,
        colidx: np.ndarray,
        val: np.ndarray,
        mask: np.ndarray,
        check: bool = True,
    ) -> None:
        if tile_size not in _SUPPORTED_TILE_SIZES:
            raise ValueError(
                f"tile_size must be one of {_SUPPORTED_TILE_SIZES}, got {tile_size}"
            )
        self.shape = (int(shape[0]), int(shape[1]))
        self.tile_size = int(tile_size)
        self.tileptr = np.ascontiguousarray(tileptr, dtype=np.int64)
        self.tilecolidx = np.ascontiguousarray(tilecolidx, dtype=np.int64)
        self.tilennz = np.ascontiguousarray(tilennz, dtype=np.int64)
        self.rowptr = np.ascontiguousarray(rowptr)
        self.rowidx = np.ascontiguousarray(rowidx, dtype=np.uint8)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint8)
        self.val = np.ascontiguousarray(val, dtype=np.float64)
        self.mask = np.ascontiguousarray(mask)
        self._tile_csc_cache: Optional[Dict[str, np.ndarray]] = None
        if check:
            self.validate()

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def num_tile_rows(self) -> int:
        """Number of tile rows, ``ceil(nrows / tile_size)``."""
        return int(self.tileptr.size - 1)

    @property
    def num_tile_cols(self) -> int:
        """Number of tile columns, ``ceil(ncols / tile_size)``."""
        return -(-self.shape[1] // self.tile_size) if self.shape[1] else 0

    @property
    def num_tiles(self) -> int:
        """Number of stored (non-empty or allocated) tiles."""
        return int(self.tilecolidx.size)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.val.size)

    def tile_rowidx(self) -> np.ndarray:
        """Tile row index of each stored tile (expanded from ``tileptr``)."""
        return np.repeat(
            np.arange(self.num_tile_rows, dtype=np.int64), np.diff(self.tileptr)
        )

    def tile_nnz_counts(self) -> np.ndarray:
        """Nonzero count of each stored tile."""
        return np.diff(self.tilennz)

    def tile_of_nonzero(self) -> np.ndarray:
        """For each nonzero, the index of the tile that owns it."""
        return np.repeat(np.arange(self.num_tiles, dtype=np.int64), self.tile_nnz_counts())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, tile_size: int = TILE) -> "TileMatrix":
        """Convert COO triplets to the tiled format.

        This is the conversion the paper times in Figure 12 (there from
        CSR; the kernel is identical after expanding CSR's row pointer).
        Duplicates are summed first; explicit zeros are kept.
        """
        canon = coo.sum_duplicates()
        return cls._from_canonical_coo(canon, tile_size)

    @classmethod
    def from_csr(cls, csr: CSRMatrix, tile_size: int = TILE) -> "TileMatrix":
        """Convert a CSR matrix to the tiled format."""
        return cls._from_canonical_coo(csr.to_coo(), tile_size)

    @classmethod
    def _from_canonical_coo(cls, coo: COOMatrix, tile_size: int) -> "TileMatrix":
        T = int(tile_size)
        if T not in _SUPPORTED_TILE_SIZES:
            raise ValueError(f"tile_size must be one of {_SUPPORTED_TILE_SIZES}")
        nrows, ncols = coo.shape
        num_tile_rows = -(-nrows // T) if nrows else 0
        num_tile_cols = -(-ncols // T) if ncols else 0

        trow = coo.row // T
        tcol = coo.col // T
        lrow = (coo.row - trow * T).astype(np.uint8)
        lcol = (coo.col - tcol * T).astype(np.uint8)

        # Tile-major, then row-major-within-tile ordering.
        order = np.lexsort((lcol, lrow, tcol, trow))
        trow, tcol = trow[order], tcol[order]
        lrow, lcol = lrow[order], lcol[order]
        val = coo.val[order]

        nnz = val.size
        if nnz:
            key = trow * max(num_tile_cols, 1) + tcol
            new_tile = np.empty(nnz, dtype=bool)
            new_tile[0] = True
            np.not_equal(key[1:], key[:-1], out=new_tile[1:])
            tile_slot = np.cumsum(new_tile) - 1  # per-nonzero tile index
            starts = np.flatnonzero(new_tile)
            num_tiles = starts.size
            tile_trow = trow[starts]
            tilecolidx = tcol[starts]
            tilennz = np.zeros(num_tiles + 1, dtype=np.int64)
            tilennz[1:-1] = starts[1:]
            tilennz[-1] = nnz
        else:
            tile_slot = np.empty(0, dtype=np.int64)
            num_tiles = 0
            tile_trow = np.empty(0, dtype=np.int64)
            tilecolidx = np.empty(0, dtype=np.int64)
            tilennz = np.zeros(1, dtype=np.int64)

        tileptr = np.zeros(num_tile_rows + 1, dtype=np.int64)
        if num_tiles:
            np.cumsum(np.bincount(tile_trow, minlength=num_tile_rows), out=tileptr[1:])

        mask_dtype = mask_dtype_for(T)
        mask = np.zeros((num_tiles, T), dtype=mask_dtype)
        if nnz:
            flat = mask.reshape(-1)
            bit = (np.asarray(1, dtype=mask_dtype) << lcol.astype(mask_dtype))
            np.bitwise_or.at(flat, tile_slot * T + lrow, bit)

        rowptr = cls._rowptr_from_mask(mask, T)

        return cls(
            coo.shape,
            T,
            tileptr,
            tilecolidx,
            tilennz,
            rowptr,
            lrow,
            lcol,
            val,
            mask,
            check=False,
        )

    @staticmethod
    def _rowptr_from_mask(mask: np.ndarray, tile_size: int) -> np.ndarray:
        """Derive per-tile row pointers from the row masks by popcount."""
        counts = _popcount_any(mask).astype(np.int64)
        rowptr = np.zeros_like(counts)
        if counts.size:
            np.cumsum(counts[:, :-1], axis=1, out=rowptr[:, 1:])
        return rowptr.astype(_rowptr_dtype_for(tile_size))

    @classmethod
    def empty(cls, shape: Tuple[int, int], tile_size: int = TILE) -> "TileMatrix":
        """An all-zero matrix of the given shape."""
        return cls.from_coo(COOMatrix.empty(shape), tile_size)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant; raises ``ValueError`` on breakage.

        Covered invariants (the property-based tests drive these hard):

        * pointer arrays are monotone and consistent with array sizes;
        * tile column indices are in range and strictly increasing within a
          tile row;
        * local indices are within the tile and row-major sorted per tile;
        * masks agree exactly with the stored local indices;
        * row pointers agree with mask popcounts;
        * no tile exceeds ``tile_size**2`` nonzeros.
        """
        T = self.tile_size
        if self.tileptr[0] != 0 or self.tileptr[-1] != self.num_tiles:
            raise ValueError("tileptr must span [0, num_tiles]")
        if np.any(np.diff(self.tileptr) < 0):
            raise ValueError("tileptr must be non-decreasing")
        if self.tilennz.shape != (self.num_tiles + 1,):
            raise ValueError("tilennz must have num_tiles + 1 entries")
        if self.tilennz[0] != 0 or self.tilennz[-1] != self.nnz:
            raise ValueError("tilennz must span [0, nnz]")
        counts = self.tile_nnz_counts()
        if np.any(counts < 0):
            raise ValueError("tilennz must be non-decreasing")
        if np.any(counts > T * T):
            raise ValueError(f"a tile holds more than {T * T} nonzeros")
        if self.num_tiles:
            if self.tilecolidx.min() < 0 or self.tilecolidx.max() >= max(self.num_tile_cols, 1):
                raise ValueError("tile column index out of range")
            # Strictly increasing tile columns within each tile row.
            same_row = np.repeat(False, self.num_tiles)
            trow = self.tile_rowidx()
            same_row[1:] = trow[1:] == trow[:-1]
            bad = same_row[1:] & (self.tilecolidx[1:] <= self.tilecolidx[:-1])
            if np.any(bad):
                raise ValueError("tile columns not strictly increasing within a tile row")
        if self.mask.shape != (self.num_tiles, T):
            raise ValueError("mask must be (num_tiles, tile_size)")
        if self.rowptr.shape != (self.num_tiles, T):
            raise ValueError("rowptr must be (num_tiles, tile_size)")
        if self.nnz:
            if self.rowidx.max() >= T or self.colidx.max() >= T:
                raise ValueError("local index out of tile range")
        # Masks must match local indices exactly.
        mask_dtype = mask_dtype_for(T)
        rebuilt = np.zeros_like(self.mask)
        if self.nnz:
            flat = rebuilt.reshape(-1)
            bit = np.asarray(1, dtype=mask_dtype) << self.colidx.astype(mask_dtype)
            np.bitwise_or.at(flat, self.tile_of_nonzero() * T + self.rowidx, bit)
        if not np.array_equal(rebuilt, self.mask):
            raise ValueError("mask disagrees with stored local indices")
        # Row pointers must match popcounts (and nnz per tile).
        pc = _popcount_any(self.mask).astype(np.int64)
        if self.num_tiles and not np.array_equal(pc.sum(axis=1), counts):
            raise ValueError("mask popcounts disagree with tilennz")
        expected_rowptr = self._rowptr_from_mask(self.mask, T)
        if not np.array_equal(expected_rowptr.astype(np.int64), self.rowptr.astype(np.int64)):
            raise ValueError("rowptr disagrees with mask popcounts")
        # Row-major ordering inside each tile.
        if self.nnz > 1:
            tile_of = self.tile_of_nonzero()
            same_tile = tile_of[1:] == tile_of[:-1]
            key = self.rowidx.astype(np.int64) * T + self.colidx
            if np.any(same_tile & (key[1:] <= key[:-1])):
                raise ValueError("nonzeros not strictly row-major within a tile")

    # ------------------------------------------------------------------
    # High-level structure views
    # ------------------------------------------------------------------
    def tile_pattern_csr(self) -> CSRMatrix:
        """The high-level tile layout ``A'`` as a CSR 0/1 matrix.

        Step 1 of TileSpGEMM multiplies these patterns symbolically to find
        the candidate tiles of ``C``.
        """
        return CSRMatrix(
            (self.num_tile_rows, max(self.num_tile_cols, 1)),
            self.tileptr,
            self.tilecolidx,
            np.ones(self.num_tiles, dtype=np.float64),
            check=False,
        )

    def tile_csc(self) -> Dict[str, np.ndarray]:
        """Column-major view of the tile layout (cached).

        Returns a dict with:

        * ``colptr``  (``num_tile_cols + 1``): offsets per tile column;
        * ``rowidx``  (``num_tiles``): tile row indices, sorted per column;
        * ``tile_id`` (``num_tiles``): for each column-major position, the
          corresponding index into this matrix's tile arrays.

        Step 2's set intersection walks tile columns of ``B`` through this
        view (the CUDA code keeps an analogous ``tileColPtr_B`` /
        ``tileRowidx_B`` pair).
        """
        if self._tile_csc_cache is None:
            ntc = max(self.num_tile_cols, 1)
            counts = np.bincount(self.tilecolidx, minlength=ntc) if self.num_tiles else np.zeros(ntc, dtype=np.int64)
            colptr = np.zeros(ntc + 1, dtype=np.int64)
            np.cumsum(counts, out=colptr[1:])
            order = np.argsort(self.tilecolidx, kind="stable")
            self._tile_csc_cache = {
                "colptr": colptr,
                "rowidx": self.tile_rowidx()[order],
                "tile_id": order.astype(np.int64),
            }
        return self._tile_csc_cache

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Convert back to COO triplets (keeps explicit zeros)."""
        T = self.tile_size
        tile_of = self.tile_of_nonzero()
        trow = self.tile_rowidx()
        row = trow[tile_of] * T + self.rowidx
        col = self.tilecolidx[tile_of] * T + self.colidx
        return COOMatrix(self.shape, row, col, self.val)

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR."""
        return self.to_coo().to_csr()

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array."""
        return self.to_coo().to_dense()

    def packed_local_indices(self) -> np.ndarray:
        """The paper's packed uint8 local index: high nibble row, low nibble col.

        Only defined for ``tile_size <= 16``.
        """
        if self.tile_size > 16:
            raise ValueError("packed uint8 indices require tile_size <= 16")
        return ((self.rowidx.astype(np.uint16) << 4) | self.colidx).astype(np.uint8)

    # ------------------------------------------------------------------
    # Space accounting (Figure 11)
    # ------------------------------------------------------------------
    def memory_bytes(self, pointer_bytes: int = 4, value_bytes: int = 8) -> int:
        """Space cost in bytes under the paper's accounting.

        High-level arrays use 32-bit words; each nonzero pays one *packed*
        local-index byte (4+4 bits for ``T = 16``) plus its value; each tile
        pays ``T`` row-pointer bytes and ``T`` mask words.
        """
        T = self.tile_size
        high = pointer_bytes * (self.tileptr.size + self.tilecolidx.size + self.tilennz.size)
        packed_index_bytes = 1 if T <= 16 else 2
        per_nnz = self.nnz * (packed_index_bytes + value_bytes)
        rowptr_bytes = self.num_tiles * T * _rowptr_dtype_for(T).itemsize
        mask_bytes = self.num_tiles * T * mask_dtype_for(T).itemsize
        return int(high + per_nnz + rowptr_bytes + mask_bytes)

    # ------------------------------------------------------------------
    def drop_empty_tiles(self) -> "TileMatrix":
        """Return a copy without zero-nonzero tiles.

        Step 1 of the SpGEMM may allocate tiles of ``C`` that turn out
        empty (the paper explicitly allows the final ``C`` to store empty
        tiles); this compacts them away.
        """
        counts = self.tile_nnz_counts()
        keep = counts > 0
        if keep.all():
            return self
        trow = self.tile_rowidx()[keep]
        tileptr = np.zeros(self.num_tile_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(trow, minlength=self.num_tile_rows), out=tileptr[1:])
        tilennz = np.zeros(keep.sum() + 1, dtype=np.int64)
        np.cumsum(counts[keep], out=tilennz[1:])
        return TileMatrix(
            self.shape,
            self.tile_size,
            tileptr,
            self.tilecolidx[keep],
            tilennz,
            self.rowptr[keep],
            self.rowidx,
            self.colidx,
            self.val,
            self.mask[keep],
            check=False,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the tiled structure to an ``.npz`` file.

        The paper's Figure 12 argument is that the tiled format is worth
        holding *resident* across SpGEMM calls; persistence extends that
        residency across runs (e.g. an AMG hierarchy reused between
        solves) without paying the conversion again.
        """
        np.savez_compressed(
            path,
            shape=np.asarray(self.shape, dtype=np.int64),
            tile_size=np.asarray([self.tile_size], dtype=np.int64),
            tileptr=self.tileptr,
            tilecolidx=self.tilecolidx,
            tilennz=self.tilennz,
            rowptr=self.rowptr,
            rowidx=self.rowidx,
            colidx=self.colidx,
            val=self.val,
            mask=self.mask,
        )

    @classmethod
    def load(cls, path) -> "TileMatrix":
        """Load a tiled structure previously written by :meth:`save`.

        The loaded structure is fully validated (a corrupted or truncated
        file raises ``ValueError`` rather than producing silent garbage).
        """
        with np.load(path) as data:
            return cls(
                tuple(int(x) for x in data["shape"]),
                int(data["tile_size"][0]),
                data["tileptr"],
                data["tilecolidx"],
                data["tilennz"],
                data["rowptr"],
                data["rowidx"],
                data["colidx"],
                data["val"],
                data["mask"],
                check=True,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TileMatrix(shape={self.shape}, tile={self.tile_size}, "
            f"tiles={self.num_tiles}, nnz={self.nnz})"
        )


def _popcount_any(mask: np.ndarray) -> np.ndarray:
    """Popcount for mask arrays of width up to 32 bits."""
    if mask.dtype.itemsize <= 2:
        return popcount16(mask)
    m = mask.astype(np.uint64)
    return (
        popcount16(m & np.uint64(0xFFFF)).astype(np.int64)
        + popcount16((m >> np.uint64(16)) & np.uint64(0xFFFF))
        + popcount16((m >> np.uint64(32)) & np.uint64(0xFFFF))
        + popcount16((m >> np.uint64(48)) & np.uint64(0xFFFF))
    )
