"""Step 1 of TileSpGEMM: computing the tile layout of ``C`` (paper §3.3).

The high-level tile structures of ``A`` and ``B`` are themselves sparse
patterns ``A'`` and ``B'`` (one "nonzero" per non-empty tile).  A symbolic
SpGEMM ``C' = A'B'`` yields the candidate tiles of ``C``.  Tile-level
cancellation is deliberately not considered: a candidate tile may turn out
to hold zero nonzeros after step 2, and the final ``C`` is allowed to keep
(or drop) such tiles.

The paper delegates this step to the NSPARSE library because the tile-level
problem is small and NSPARSE is fast on small cases.  We mirror that
layering: the default implementation here is the hash-based symbolic kernel
shared with our NSPARSE-like baseline, with a vectorised expand-and-sort
variant (``method="expand"``) that the fast path uses, and the tests assert
that both produce identical layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.util.arrays import concat_ranges

__all__ = ["TileLayout", "step1_tile_layout", "symbolic_spgemm_pattern"]


@dataclass
class TileLayout:
    """The candidate tile structure of ``C`` (output of step 1).

    Attributes
    ----------
    num_tile_rows, num_tile_cols:
        Dimensions of ``C``'s tile grid.
    tileptr:
        ``(num_tile_rows + 1)`` offsets of tiles per tile row.
    tilecolidx:
        Tile column of each candidate tile, sorted within a tile row.
    tile_flops:
        Tile-level multiply count of the symbolic product (the number of
        ``A'``/``B'`` nonzero pairs inspected) — a cost-model input.
    """

    num_tile_rows: int
    num_tile_cols: int
    tileptr: np.ndarray
    tilecolidx: np.ndarray
    tile_flops: int

    @property
    def num_tiles(self) -> int:
        return int(self.tilecolidx.size)

    def tile_rowidx(self) -> np.ndarray:
        """Tile row of each candidate tile (expanded from ``tileptr``)."""
        return np.repeat(
            np.arange(self.num_tile_rows, dtype=np.int64), np.diff(self.tileptr)
        )


def symbolic_spgemm_pattern(a: CSRMatrix, b: CSRMatrix, method: str = "hash"):
    """Symbolic SpGEMM on patterns: the structure of ``A @ B``.

    Parameters
    ----------
    a, b:
        Pattern matrices in CSR form (values ignored).
    method:
        ``"hash"`` — per-row hash table insertion, the strategy of the
        NSPARSE library the paper calls here; or ``"expand"`` — global
        expansion, sort and unique, the ESC strategy, fully vectorised.

    Returns
    -------
    (indptr, indices, flops):
        CSR structure of the product's pattern (indices sorted per row) and
        the number of pattern multiply operations performed.
    """
    if method == "expand":
        return _symbolic_expand(a, b)
    if method == "hash":
        return _symbolic_hash(a, b)
    raise ValueError(f"unknown symbolic method {method!r}")


def _symbolic_expand(a: CSRMatrix, b: CSRMatrix):
    b_row_len = np.diff(b.indptr)
    rep = b_row_len[a.indices]
    flops = int(rep.sum())
    # Expand every (i, k) against row k of B: intermediate (i, j) pairs.
    inter_i = np.repeat(a.row_indices_expanded(), rep)
    inter_j = b.indices[concat_ranges(b.indptr[a.indices], rep)]
    key = inter_i * b.shape[1] + inter_j
    uniq = np.unique(key)
    rows = uniq // b.shape[1]
    cols = uniq % b.shape[1]
    indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=a.shape[0]), out=indptr[1:])
    return indptr, cols.astype(np.int64), flops

def _symbolic_hash(a: CSRMatrix, b: CSRMatrix):
    """Row-by-row hash symbolic kernel (NSPARSE-style, Python loop).

    Each output row uses an open-addressing table sized to the next power
    of two above the row's upper-bound nonzero count, exactly like
    NSPARSE's per-bin shared-memory tables.  Python sets would be faster
    here, but the point of this kernel is to exercise the same collision
    behaviour the GPU library has; the loop cost is acceptable because
    step 1 operates on the small tile-level pattern.
    """
    nrows = a.shape[0]
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    rows_out = []
    flops = 0
    for i in range(nrows):
        cols_a = a.indices[a.indptr[i] : a.indptr[i + 1]]
        # Upper bound on the row's nonzeros drives the table size.
        ub = int(np.diff(b.indptr)[cols_a].sum()) if cols_a.size else 0
        flops += ub
        if ub == 0:
            rows_out.append(np.empty(0, dtype=np.int64))
            continue
        table_size = 1
        while table_size < 2 * ub:
            table_size <<= 1
        table = np.full(table_size, -1, dtype=np.int64)
        count = 0
        mask = table_size - 1
        for k in cols_a:
            row_b = b.indices[b.indptr[k] : b.indptr[k + 1]]
            for j in row_b:
                h = (int(j) * 2654435761) & mask
                while True:
                    cur = table[h]
                    if cur == j:
                        break
                    if cur == -1:
                        table[h] = j
                        count += 1
                        break
                    h = (h + 1) & mask
        found = np.sort(table[table >= 0])
        assert found.size == count
        rows_out.append(found)
    lengths = np.array([r.size for r in rows_out], dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    indices = (
        np.concatenate(rows_out) if rows_out else np.empty(0, dtype=np.int64)
    )
    return indptr, indices, flops


def step1_tile_layout(a_pattern: CSRMatrix, b_pattern: CSRMatrix, method: str = "expand") -> TileLayout:
    """Run step 1: symbolic tile-level SpGEMM ``C' = A'B'``.

    Parameters
    ----------
    a_pattern, b_pattern:
        The high-level tile layouts of ``A`` and ``B``
        (:meth:`repro.core.tile_matrix.TileMatrix.tile_pattern_csr`).
    method:
        Symbolic kernel, ``"expand"`` (vectorised default) or ``"hash"``
        (NSPARSE-like, what the paper calls).
    """
    indptr, indices, flops = symbolic_spgemm_pattern(a_pattern, b_pattern, method=method)
    return TileLayout(
        num_tile_rows=a_pattern.shape[0],
        num_tile_cols=b_pattern.shape[1],
        tileptr=indptr,
        tilecolidx=indices,
        tile_flops=flops,
    )
