"""The paper's primary contribution: the tiled format and TileSpGEMM.

Public surface:

* :class:`~repro.core.tile_matrix.TileMatrix` — the two-level sparse tile
  data structure (paper §3.2).
* :func:`~repro.core.tilespgemm.tile_spgemm` /
  :func:`~repro.core.tilespgemm.tile_spgemm_from_csr` — the three-step
  SpGEMM algorithm (paper §3.3).
* The individual steps (:mod:`~repro.core.step1`, :mod:`~repro.core.step2`,
  :mod:`~repro.core.step3`), pair enumeration (:mod:`~repro.core.pairs`)
  and set-intersection kernels (:mod:`~repro.core.intersect`) are exposed
  for analysis, ablations and tests.
"""

from repro.core.intersect import (
    binary_search_cost,
    intersect,
    intersect_binary,
    intersect_merge,
    merge_cost,
)
from repro.core.masked import masked_tile_spgemm
from repro.core.pairs import TilePairs, enumerate_pairs_expand, enumerate_pairs_intersect
from repro.core.spmv import csr_spmv, tile_spmv
from repro.core.sptrsv import LevelScheduleStats, level_schedule, sptrsv
from repro.core.step1 import TileLayout, step1_tile_layout, symbolic_spgemm_pattern
from repro.core.step2 import SymbolicResult, step2_symbolic
from repro.core.step3 import DEFAULT_TNNZ, NumericResult, default_tnnz, step3_numeric
from repro.core.tile_matrix import TILE, TileMatrix, mask_dtype_for
from repro.core.tilespgemm import TileSpGEMMResult, tile_spgemm, tile_spgemm_from_csr

__all__ = [
    "TILE",
    "TileMatrix",
    "mask_dtype_for",
    "TileLayout",
    "TilePairs",
    "SymbolicResult",
    "NumericResult",
    "TileSpGEMMResult",
    "DEFAULT_TNNZ",
    "default_tnnz",
    "tile_spgemm",
    "tile_spgemm_from_csr",
    "masked_tile_spgemm",
    "tile_spmv",
    "csr_spmv",
    "sptrsv",
    "level_schedule",
    "LevelScheduleStats",
    "step1_tile_layout",
    "symbolic_spgemm_pattern",
    "step2_symbolic",
    "step3_numeric",
    "enumerate_pairs_expand",
    "enumerate_pairs_intersect",
    "intersect",
    "intersect_binary",
    "intersect_merge",
    "binary_search_cost",
    "merge_cost",
]
