"""Sparse matrix-vector multiply on the tiled format (TileSpMV companion).

The paper's group built TileSpMV (IPDPS'21, the paper's reference [94]) on
the same tiled storage: once a matrix lives in sparse-tile form for
SpGEMM, the surrounding application (an AMG solver's smoothers and
residuals, a graph algorithm's frontier pushes) wants SpMV on the *same*
resident structure rather than converting back to CSR.  This module
provides that kernel plus a CSR reference, so the AMG application in
:mod:`repro.apps.amg` can run a complete solve on tiled operators.

The tiled kernel assigns (conceptually) one warp per non-empty tile —
``y[trow*T + r] += val * x[tcol*T + c]`` accumulated per tile row — which
is exactly TileSpMV's warp-per-tile scheme; vectorised here as one
scatter-add over the tile-expanded coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.core.tile_matrix import TileMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["tile_spmv", "csr_spmv"]


def tile_spmv(a: TileMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``y = A @ x`` on a tiled matrix.

    Parameters
    ----------
    a:
        Matrix in tiled form.
    x:
        Dense vector of length ``a.shape[1]``.

    Returns
    -------
    Dense ``float64`` vector of length ``a.shape[0]``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.shape[1],):
        raise ValueError(
            f"vector length {x.shape} does not match matrix columns {a.shape[1]}"
        )
    T = a.tile_size
    tile_of = a.tile_of_nonzero()
    rows = a.tile_rowidx()[tile_of] * T + a.rowidx
    cols = a.tilecolidx[tile_of] * T + a.colidx
    return np.bincount(rows, weights=a.val * x[cols], minlength=a.shape[0])


def csr_spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference ``y = A @ x`` on CSR storage."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.shape[1],):
        raise ValueError(
            f"vector length {x.shape} does not match matrix columns {a.shape[1]}"
        )
    return np.bincount(
        a.row_indices_expanded(), weights=a.val * x[a.indices], minlength=a.shape[0]
    )
