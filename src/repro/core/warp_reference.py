"""A warp-semantics reference interpreter for steps 2 and 3.

The production kernels in :mod:`repro.core.step2` / :mod:`repro.core.step3`
are NumPy-vectorised across all tiles at once; this module executes the
same algorithms the way the paper's CUDA kernels do — **one warp of 32
lanes per candidate tile**, lanes striding the tile's work, AtomicOr /
AtomicAdd into an explicit shared-memory image — and counts every
operation while doing it.

It serves two purposes:

* **faithfulness evidence** — the tests assert the interpreter's output is
  bit-identical to the vectorised pipeline's, so the vectorisation is
  demonstrably a re-expression of the paper's per-warp algorithm, not a
  different algorithm;
* **measured op counts** — the interpreter's per-tile tallies (mask ORs,
  products, atomic conflicts, lane waves) are ground truth for the GPU
  cost model's analytic estimates.

It is deliberately slow (Python warp loop); use it on small matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.pairs import TilePairs
from repro.core.tile_matrix import TileMatrix

__all__ = ["WarpStats", "warp_step2_symbolic", "warp_step3_numeric"]

WARP = 32


@dataclass
class WarpStats:
    """Operation tallies of a warp-interpreted phase."""

    tiles: int = 0
    waves: int = 0  #: 32-lane waves issued
    mask_or_ops: int = 0  #: AtomicOr executions
    products: int = 0  #: multiply-adds executed
    atomic_conflicts: int = 0  #: same-address atomics within one wave
    per_tile_waves: Dict[int, int] = field(default_factory=dict)


def warp_step2_symbolic(a: TileMatrix, b: TileMatrix, pairs: TilePairs):
    """Run step 2 as one warp per candidate tile; returns (masks, stats).

    Each warp loads its pair list; for each matched pair the 32 lanes
    stride the ``A`` tile's nonzeros, lane ``l`` handling nonzeros
    ``l, l+32, ...``; every lane ORs ``mask_B[c]`` into the shared
    ``mask_C[r]`` (an AtomicOr — conflicts counted when two lanes of the
    same wave hit one row).
    """
    T = a.tile_size
    num_c = pairs.num_c_tiles
    masks = np.zeros((num_c, T), dtype=a.mask.dtype)
    stats = WarpStats(tiles=num_c)

    for t in range(num_c):
        shared_mask = np.zeros(T, dtype=np.uint32)  # scratchpad image
        tile_waves = 0
        for p in range(pairs.pair_ptr[t], pairs.pair_ptr[t + 1]):
            at = pairs.pair_a[p]
            bt = pairs.pair_b[p]
            lo, hi = a.tilennz[at], a.tilennz[at + 1]
            nnz = hi - lo
            for wave_start in range(0, int(nnz), WARP):
                tile_waves += 1
                rows_hit = {}
                for lane in range(min(WARP, int(nnz) - wave_start)):
                    idx = lo + wave_start + lane
                    r = int(a.rowidx[idx])
                    c = int(a.colidx[idx])
                    shared_mask[r] |= int(b.mask[bt, c])
                    stats.mask_or_ops += 1
                    rows_hit[r] = rows_hit.get(r, 0) + 1
                stats.atomic_conflicts += sum(v - 1 for v in rows_hit.values())
        masks[t] = shared_mask.astype(masks.dtype)
        stats.waves += tile_waves
        stats.per_tile_waves[t] = tile_waves
    return masks, stats


def warp_step3_numeric(
    a: TileMatrix,
    b: TileMatrix,
    pairs: TilePairs,
    masks: np.ndarray,
    tnnz: int = 192,
):
    """Run step 3 as one warp per candidate tile; returns (dense_c, stats).

    Lanes stride the ``A`` tile's nonzeros; each lane serially walks its
    nonzero's matching ``B`` row (as the CUDA kernel does) and AtomicAdds
    products into a shared dense tile image.  The sparse/dense accumulator
    distinction affects only where results land on the GPU; the reference
    accumulates densely and lets the caller compact through the mask,
    which is numerically identical.
    """
    T = a.tile_size
    num_c = pairs.num_c_tiles
    dense_c = np.zeros((num_c, T, T), dtype=np.float64)
    stats = WarpStats(tiles=num_c)
    from repro.util.bits import popcount16

    b_row_len = popcount16(b.mask).astype(np.int64)

    for t in range(num_c):
        tile_waves = 0
        for p in range(pairs.pair_ptr[t], pairs.pair_ptr[t + 1]):
            at = pairs.pair_a[p]
            bt = pairs.pair_b[p]
            lo, hi = a.tilennz[at], a.tilennz[at + 1]
            nnz = int(hi - lo)
            for wave_start in range(0, nnz, WARP):
                tile_waves += 1
                cells_hit = {}
                for lane in range(min(WARP, nnz - wave_start)):
                    idx = lo + wave_start + lane
                    r = int(a.rowidx[idx])
                    c = int(a.colidx[idx])
                    va = float(a.val[idx])
                    b_lo = int(b.tilennz[bt]) + int(b.rowptr[bt, c])
                    for s in range(int(b_row_len[bt, c])):
                        cc = int(b.colidx[b_lo + s])
                        dense_c[t, r, cc] += va * float(b.val[b_lo + s])
                        stats.products += 1
                        cells_hit[(r, cc)] = cells_hit.get((r, cc), 0) + 1
                stats.atomic_conflicts += sum(v - 1 for v in cells_hit.values())
        stats.waves += tile_waves
        stats.per_tile_waves[t] = tile_waves
    return dense_c, stats
