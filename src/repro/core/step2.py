"""Step 2 of TileSpGEMM: the symbolic phase (paper §3.3, Algorithm 2).

Given the candidate tiles of ``C`` and the matched ``(A_ik, B_kj)`` tile
pairs, this step determines each candidate tile's bit masks, row pointer
and nonzero count — everything needed to allocate ``C`` — without touching
values.

The kernel is the paper's Figure 5 verbatim, vectorised: for every matched
pair, every nonzero of the ``A`` tile (local position ``(r, c)``) ORs the
``c``-th row mask of the ``B`` tile onto the ``r``-th row mask of the ``C``
tile.  The CUDA ``AtomicOr`` becomes an unbuffered ``np.bitwise_or.at``
scatter; the per-tile row pointers then fall out of mask popcounts plus a
prefix scan, exactly as in the paper.

All working state of this step is bounded by ``num_c_tiles * tile_size``
mask words — the Python analogue of the paper's claim that step 2 runs
entirely in on-chip scratchpad memory with no global intermediate arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.core.pairs import TilePairs
from repro.core.tile_matrix import TileMatrix, mask_dtype_for
from repro.util.arrays import concat_ranges

__all__ = ["SymbolicResult", "step2_symbolic"]


@dataclass
class SymbolicResult:
    """Output of the symbolic phase for the candidate tiles of ``C``.

    Attributes
    ----------
    mask:
        ``(num_c_tiles, T)`` row masks of every candidate tile.
    rowptr:
        ``(num_c_tiles, T)`` per-tile CSR row pointers (paper convention:
        ``T`` entries, the implicit last offset is the tile's nnz).
    tilennz:
        ``(num_c_tiles + 1)`` offsets of each tile's nonzeros in the value
        array to be allocated.
    tile_nnz_counts:
        Per-tile nonzero counts (``diff(tilennz)``).
    symbolic_ops:
        Number of mask-OR operations performed (cost-model input): one per
        (pair, A-tile nonzero).
    pair_a_nnz:
        Per-pair nonzero count of the pair's ``A`` tile (cost-model input).
    """

    mask: np.ndarray
    rowptr: np.ndarray
    tilennz: np.ndarray
    tile_nnz_counts: np.ndarray
    symbolic_ops: int
    pair_a_nnz: np.ndarray

    @property
    def nnz(self) -> int:
        """Total nonzeros of ``C`` (sum over candidate tiles)."""
        return int(self.tilennz[-1])


def step2_symbolic(
    a: TileMatrix, b: TileMatrix, pairs: TilePairs, backend=None
) -> SymbolicResult:
    """Run the symbolic phase over all candidate tiles at once.

    ``backend`` selects the kernel set for the mask OR-accumulate and the
    popcounts (a name, a :class:`~repro.backend.KernelSet`, or ``None``
    for the ambient default — see :func:`repro.backend.resolve_backend`).
    """
    kernels = resolve_backend(backend)
    T = a.tile_size
    if T != b.tile_size:
        raise ValueError("A and B must use the same tile size")
    if T > 16:
        raise ValueError("the SpGEMM kernels support tile sizes up to 16")
    mask_dtype = mask_dtype_for(T)
    num_c = pairs.num_c_tiles
    mask_c = np.zeros((num_c, T), dtype=mask_dtype)

    a_counts = a.tile_nnz_counts()
    pair_a_nnz = a_counts[pairs.pair_a] if pairs.num_pairs else np.empty(0, dtype=np.int64)

    if pairs.num_pairs:
        # Expand every pair into its A tile's nonzeros.
        a_nnz_idx = concat_ranges(a.tilennz[pairs.pair_a], pair_a_nnz)
        pair_of_nnz = np.repeat(np.arange(pairs.num_pairs, dtype=np.int64), pair_a_nnz)
        c_slot = pairs.pair_c_slot()[pair_of_nnz]
        b_tile = pairs.pair_b[pair_of_nnz]

        r = a.rowidx[a_nnz_idx].astype(np.int64)
        c = a.colidx[a_nnz_idx].astype(np.int64)
        # AtomicOr(mask_C[slot, r], mask_B[b_tile, c]) for every A nonzero.
        flat = mask_c.reshape(-1)
        kernels.mask_or_into(flat, c_slot * T + r, b.mask[b_tile, c])
        symbolic_ops = int(a_nnz_idx.size)
    else:
        symbolic_ops = 0

    counts_per_row = kernels.popcount(mask_c).astype(np.int64)
    rowptr = np.zeros_like(counts_per_row)
    if num_c:
        np.cumsum(counts_per_row[:, :-1], axis=1, out=rowptr[:, 1:])
    tile_counts = counts_per_row.sum(axis=1) if num_c else np.zeros(0, dtype=np.int64)
    tilennz = np.zeros(num_c + 1, dtype=np.int64)
    np.cumsum(tile_counts, out=tilennz[1:])

    rowptr_dtype = np.uint8 if T * T <= 256 else np.uint16
    return SymbolicResult(
        mask=mask_c,
        rowptr=rowptr.astype(rowptr_dtype),
        tilennz=tilennz,
        tile_nnz_counts=tile_counts,
        symbolic_ops=symbolic_ops,
        pair_a_nnz=pair_a_nnz,
    )
