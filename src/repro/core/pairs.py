"""Matched tile-pair enumeration for TileSpGEMM.

Tile ``C_ij`` is the sum of products ``A_ik × B_kj`` over every ``k`` for
which *both* tiles exist.  This module computes, for the whole
multiplication at once, the flat list of matched pairs together with the
candidate tile of ``C`` each pair contributes to.

Two equivalent strategies are provided:

* :func:`enumerate_pairs_expand` — the vectorised production path: a
  tile-level row-by-row expansion (each tile ``A_ik`` is joined with every
  tile of ``B``'s tile row ``k``), then a sort groups pairs by their target
  tile of ``C``.  This produces exactly the pairs the paper's per-tile set
  intersection finds, in one NumPy pass.
* :func:`enumerate_pairs_intersect` — the faithful per-tile rendition of
  the paper's Algorithm 2: for every candidate ``C`` tile, intersect
  ``A``'s tile row with ``B``'s tile column using binary search (or merge).
  Quadratic in Python-loop terms, so used for testing and for small inputs,
  but bit-for-bit identical in its output.

The tests assert the two agree; the GPU cost model consumes the per-tile
intersection lengths either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.intersect import intersect
from repro.core.tile_matrix import TileMatrix
from repro.util.arrays import concat_ranges, segment_ids

__all__ = ["TilePairs", "enumerate_pairs_expand", "enumerate_pairs_intersect"]


@dataclass
class TilePairs:
    """The matched tile pairs of one SpGEMM, grouped by target C tile.

    Attributes
    ----------
    c_tilerow, c_tilecol:
        Per-candidate-tile coordinates of ``C`` (row-major sorted, unique).
    pair_ptr:
        ``(num_c_tiles + 1)`` offsets: candidate tile ``t`` owns pairs
        ``pair_a[pair_ptr[t]:pair_ptr[t+1]]``.
    pair_a, pair_b:
        For each matched pair, the tile index into ``A``'s / ``B``'s tile
        arrays.
    len_a, len_b:
        For each candidate tile, the lengths of the two intersected lists
        (``A``'s tile row, ``B``'s tile column) — the cost-model inputs.
    """

    c_tilerow: np.ndarray
    c_tilecol: np.ndarray
    pair_ptr: np.ndarray
    pair_a: np.ndarray
    pair_b: np.ndarray
    len_a: np.ndarray
    len_b: np.ndarray

    @property
    def num_c_tiles(self) -> int:
        return int(self.c_tilerow.size)

    @property
    def num_pairs(self) -> int:
        return int(self.pair_a.size)

    def pair_c_slot(self) -> np.ndarray:
        """For each pair, the index of its candidate C tile."""
        return segment_ids(np.diff(self.pair_ptr))


def enumerate_pairs_expand(a: TileMatrix, b: TileMatrix) -> TilePairs:
    """Vectorised tile-pair enumeration by row expansion + sort."""
    if a.num_tile_cols != b.num_tile_rows:
        raise ValueError(
            f"tile-grid mismatch: A has {a.num_tile_cols} tile cols, "
            f"B has {b.num_tile_rows} tile rows"
        )
    a_trow = a.tile_rowidx()
    a_tcol = a.tilecolidx
    b_row_len = np.diff(b.tileptr)

    # Join every A tile (i, k) with all tiles of B's tile row k.
    rep = b_row_len[a_tcol]
    pair_a = np.repeat(np.arange(a.num_tiles, dtype=np.int64), rep)
    pair_b = concat_ranges(b.tileptr[a_tcol], rep)

    c_i = a_trow[pair_a]
    c_j = b.tilecolidx[pair_b]
    ntc = max(b.num_tile_cols, 1)
    key = c_i * ntc + c_j
    order = np.argsort(key, kind="stable")
    key = key[order]
    pair_a = pair_a[order]
    pair_b = pair_b[order]

    if key.size:
        new = np.empty(key.size, dtype=bool)
        new[0] = True
        np.not_equal(key[1:], key[:-1], out=new[1:])
        starts = np.flatnonzero(new)
        c_keys = key[starts]
        pair_ptr = np.concatenate([starts, [key.size]]).astype(np.int64)
    else:
        c_keys = np.empty(0, dtype=np.int64)
        pair_ptr = np.zeros(1, dtype=np.int64)

    c_tilerow = c_keys // ntc
    c_tilecol = c_keys % ntc

    a_row_len = np.diff(a.tileptr)
    b_csc = b.tile_csc()
    b_col_len = np.diff(b_csc["colptr"])
    len_a = a_row_len[c_tilerow] if c_tilerow.size else np.empty(0, dtype=np.int64)
    len_b = b_col_len[c_tilecol] if c_tilecol.size else np.empty(0, dtype=np.int64)

    return TilePairs(c_tilerow, c_tilecol, pair_ptr, pair_a, pair_b, len_a, len_b)


def enumerate_pairs_intersect(
    a: TileMatrix,
    b: TileMatrix,
    c_tilerow: Optional[np.ndarray] = None,
    c_tilecol: Optional[np.ndarray] = None,
    method: str = "binary",
) -> TilePairs:
    """Per-tile set-intersection pair enumeration (paper Algorithm 2).

    Parameters
    ----------
    a, b:
        The input tile matrices.
    c_tilerow, c_tilecol:
        Candidate tiles of ``C`` (from step 1).  When omitted they are
        derived with :func:`enumerate_pairs_expand`, mimicking the paper's
        use of a separate symbolic SpGEMM for step 1.
    method:
        ``"binary"`` (paper default) or ``"merge"``.
    """
    if c_tilerow is None or c_tilecol is None:
        ref = enumerate_pairs_expand(a, b)
        c_tilerow, c_tilecol = ref.c_tilerow, ref.c_tilecol

    c_tilerow = np.asarray(c_tilerow, dtype=np.int64)
    c_tilecol = np.asarray(c_tilecol, dtype=np.int64)
    b_csc = b.tile_csc()

    pair_a_parts = []
    pair_b_parts = []
    counts = np.zeros(c_tilerow.size, dtype=np.int64)
    len_a = np.zeros(c_tilerow.size, dtype=np.int64)
    len_b = np.zeros(c_tilerow.size, dtype=np.int64)

    for t in range(c_tilerow.size):
        i = c_tilerow[t]
        j = c_tilecol[t]
        a_lo, a_hi = a.tileptr[i], a.tileptr[i + 1]
        b_lo, b_hi = b_csc["colptr"][j], b_csc["colptr"][j + 1]
        a_cols = a.tilecolidx[a_lo:a_hi]  # k's present in A's tile row i
        b_rows = b_csc["rowidx"][b_lo:b_hi]  # k's present in B's tile col j
        pos_a, pos_b = intersect(a_cols, b_rows, method=method)
        pair_a_parts.append(a_lo + pos_a)
        pair_b_parts.append(b_csc["tile_id"][b_lo + pos_b])
        counts[t] = pos_a.size
        len_a[t] = a_cols.size
        len_b[t] = b_rows.size

    pair_ptr = np.zeros(c_tilerow.size + 1, dtype=np.int64)
    np.cumsum(counts, out=pair_ptr[1:])
    pair_a = (
        np.concatenate(pair_a_parts) if pair_a_parts else np.empty(0, dtype=np.int64)
    )
    pair_b = (
        np.concatenate(pair_b_parts) if pair_b_parts else np.empty(0, dtype=np.int64)
    )
    return TilePairs(c_tilerow, c_tilecol, pair_ptr, pair_a, pair_b, len_a, len_b)
