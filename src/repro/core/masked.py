"""Masked SpGEMM extension: ``C = (A @ B) .* M`` on the tiled format.

GraphBLAS workloads — the paper's triangle counting and BFS motivations —
rarely need the full product: they need it *restricted to an output mask*
(for triangles, ``sum(L .* (L @ L))``).  The paper's tiled format makes
the masked variant almost free, because masks are already the format's
symbolic currency:

1. candidate tiles of ``C`` are intersected with ``M``'s tile layout —
   whole tiles outside the mask are never touched;
2. the step-2 bit masks are ANDed with ``M``'s bit masks — the output
   structure shrinks to the masked positions before any value is computed;
3. step 3 drops the intermediate products whose destination bit was
   masked away (everything else is unchanged).

This is an *extension* beyond the paper (its future-work direction of
GraphBLAS integration); it reuses the three-step machinery and is
validated against dense masking in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.pairs import TilePairs, enumerate_pairs_expand
from repro.core.step2 import SymbolicResult, step2_symbolic
from repro.core.step3 import step3_numeric
from repro.core.tile_matrix import TileMatrix
from repro.core.tilespgemm import TileSpGEMMResult, _tileptr_from_rows, collect_stats
from repro.core.step1 import TileLayout
from repro.util.alloc import AllocationTracker
from repro.util.bits import popcount16
from repro.util.timing import PhaseTimer

__all__ = ["masked_tile_spgemm"]


def _subset_pairs(pairs: TilePairs, keep: np.ndarray) -> TilePairs:
    """Restrict a pair set to the candidate tiles selected by ``keep``."""
    counts = np.diff(pairs.pair_ptr)
    pair_keep = np.repeat(keep, counts)
    new_counts = counts[keep]
    pair_ptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
    np.cumsum(new_counts, out=pair_ptr[1:])
    return TilePairs(
        c_tilerow=pairs.c_tilerow[keep],
        c_tilecol=pairs.c_tilecol[keep],
        pair_ptr=pair_ptr,
        pair_a=pairs.pair_a[pair_keep],
        pair_b=pairs.pair_b[pair_keep],
        len_a=pairs.len_a[keep],
        len_b=pairs.len_b[keep],
    )


def masked_tile_spgemm(
    a: TileMatrix,
    b: TileMatrix,
    mask: TileMatrix,
    tnnz: Optional[int] = None,
    keep_empty_tiles: bool = False,
) -> TileSpGEMMResult:
    """Compute ``C = (A @ B) .* pattern(M)`` entirely in tiled form.

    Parameters
    ----------
    a, b:
        Inputs in tiled form with equal tile sizes.
    mask:
        Output mask; only positions stored in ``mask`` (regardless of
        value) survive in ``C``.  Must have the product's shape and the
        same tile size.
    tnnz:
        Adaptive-accumulator threshold, as in :func:`tile_spgemm`
        (``None`` resolves to the tile size's 75 %-of-capacity default).
    keep_empty_tiles:
        Masked products produce many empty candidate tiles; they are
        compacted away by default.

    Returns
    -------
    TileSpGEMMResult
        With ``stats["masked"] = True`` and the usual timers/ledger.
    """
    if a.tile_size != b.tile_size or a.tile_size != mask.tile_size:
        raise ValueError("A, B and the mask must share one tile size")
    if a.shape[1] != b.shape[0]:
        raise ValueError("dimension mismatch between A and B")
    if mask.shape != (a.shape[0], b.shape[1]):
        raise ValueError(
            f"mask shape {mask.shape} does not match product shape "
            f"{(a.shape[0], b.shape[1])}"
        )
    T = a.tile_size
    timer = PhaseTimer()
    alloc = AllocationTracker()

    # ------------------------------------------------ step 1 + tile masking
    alloc.set_phase("step1")
    with timer.phase("step1"):
        pairs = enumerate_pairs_expand(a, b)
        ntc = max(mask.num_tile_cols, 1)
        cand_key = pairs.c_tilerow * ntc + pairs.c_tilecol
        mask_key = mask.tile_rowidx() * ntc + mask.tilecolidx
        # Candidate tiles that exist in the mask's tile layout.
        pos = np.searchsorted(mask_key, cand_key)
        pos = np.minimum(pos, max(mask_key.size - 1, 0))
        keep = (
            mask_key[pos] == cand_key
            if mask_key.size
            else np.zeros(cand_key.size, dtype=bool)
        )
        pairs = _subset_pairs(pairs, keep)
        mask_tile_of_cand = pos[keep]  # index into mask's tile arrays
    with timer.phase("malloc"):
        alloc.alloc("tilePtr_C", (a.num_tile_rows + 1) * 4)
        alloc.alloc("tileColIdx_C", pairs.num_c_tiles * 4)

    # --------------------------------------------- step 2 + bit-mask ANDing
    alloc.set_phase("step2")
    with timer.phase("step2"):
        sym = step2_symbolic(a, b, pairs)
        sym.mask &= mask.mask[mask_tile_of_cand]
        counts_per_row = popcount16(sym.mask).astype(np.int64)
        rowptr = np.zeros_like(counts_per_row)
        if counts_per_row.size:
            np.cumsum(counts_per_row[:, :-1], axis=1, out=rowptr[:, 1:])
        sym = SymbolicResult(
            mask=sym.mask,
            rowptr=rowptr.astype(sym.rowptr.dtype),
            tilennz=np.concatenate(
                [[0], np.cumsum(counts_per_row.sum(axis=1))]
            ).astype(np.int64),
            tile_nnz_counts=counts_per_row.sum(axis=1),
            symbolic_ops=sym.symbolic_ops,
            pair_a_nnz=sym.pair_a_nnz,
        )
    with timer.phase("malloc"):
        alloc.alloc("tileNnz_C", (pairs.num_c_tiles + 1) * 4)
        alloc.alloc("mask_C", pairs.num_c_tiles * T * sym.mask.dtype.itemsize)
        alloc.alloc("val_C", sym.nnz * 8)

    # ------------------------------------------------------------- step 3
    alloc.set_phase("step3")
    with timer.phase("step3"):
        num = step3_numeric(a, b, pairs, sym, tnnz=tnnz, mask_filter=True)

    c = TileMatrix(
        (a.shape[0], b.shape[1]),
        T,
        _tileptr_from_rows(pairs.c_tilerow, a.num_tile_rows),
        pairs.c_tilecol,
        sym.tilennz,
        sym.rowptr,
        num.rowidx,
        num.colidx,
        num.val,
        sym.mask,
        check=False,
    )
    if not keep_empty_tiles:
        c = c.drop_empty_tiles()

    layout = TileLayout(
        num_tile_rows=a.num_tile_rows,
        num_tile_cols=max(b.num_tile_cols, 1),
        tileptr=_tileptr_from_rows(pairs.c_tilerow, a.num_tile_rows),
        tilecolidx=pairs.c_tilecol,
        tile_flops=0,
    )
    stats = collect_stats(a, b, pairs, sym, num, layout)
    stats["masked"] = True
    return TileSpGEMMResult(
        c=c, timer=timer, alloc=alloc, stats=stats, pairs=pairs, symbolic=sym
    )
