"""The TileSpGEMM driver: the paper's three-step algorithm end to end.

``tile_spgemm(A, B)`` runs:

1. **step 1** — symbolic tile-level SpGEMM on the high-level layouts to
   find the candidate tiles of ``C`` (:mod:`repro.core.step1`);
2. **step 2** — per-tile set intersection plus bit-mask symbolic phase to
   size and allocate ``C`` (:mod:`repro.core.pairs`,
   :mod:`repro.core.step2`);
3. **step 3** — the numeric phase with the adaptive sparse/dense
   accumulator (:mod:`repro.core.step3`).

Every run records the paper's observables: wall time per step and for
memory allocation (Figures 10/14), a logical device-allocation ledger
(Figure 9), flop counts and the statistics the GPU execution model needs
to estimate kernel time on a modelled device (Figures 6/7/8/13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.backend import resolve_backend
from repro.core.pairs import TilePairs, enumerate_pairs_expand, enumerate_pairs_intersect
from repro.core.step1 import TileLayout, step1_tile_layout
from repro.core.step2 import SymbolicResult, step2_symbolic
from repro.core.step3 import NumericResult, default_tnnz, step3_numeric
from repro.core.tile_matrix import TILE, TileMatrix
from repro.errors import InvalidInputError
from repro.obs.context import current_obs
from repro.obs.profile import current_row_offset
from repro.runtime.context import execution_context, note_step
from repro.util.alloc import AllocationTracker
from repro.util.timing import PhaseTimer

__all__ = ["TileSpGEMMResult", "tile_spgemm", "tile_spgemm_from_csr"]


@dataclass
class TileSpGEMMResult:
    """Everything one TileSpGEMM run produces.

    Attributes
    ----------
    c:
        The product in tiled form (may contain empty tiles, like the
        paper's output; call ``c.drop_empty_tiles()`` to compact).
    timer:
        Wall-clock seconds per phase: ``step1``, ``step2``, ``step3`` and
        ``malloc``.
    alloc:
        Logical device-memory ledger of the run.
    stats:
        Cost-model inputs and run statistics (see ``collect_stats``).
    pairs, symbolic:
        Intermediate step outputs, kept for analysis and the cost model.
    """

    c: TileMatrix
    timer: PhaseTimer
    alloc: AllocationTracker
    stats: Dict[str, object] = field(default_factory=dict)
    pairs: Optional[TilePairs] = None
    symbolic: Optional[SymbolicResult] = None

    @property
    def flops(self) -> int:
        """Floating point operations (2x intermediate products)."""
        return int(self.stats["num_products"]) * 2

    def gflops(self, seconds: Optional[float] = None) -> float:
        """Throughput in GFlops for the given (default: measured) time."""
        t = self.timer.total if seconds is None else seconds
        return self.flops / t / 1e9 if t > 0 else 0.0

    def as_spgemm_result(self, method: str = "tilespgemm"):
        """Adapt to the baselines' result type for ``estimate_run`` et al.

        The adapter carries timer/ledger/stats only (``c=None``): enough
        for the cost model and memory curves, which never look at the
        product itself.
        """
        from repro.baselines.base import SpGEMMResult

        return SpGEMMResult(
            c=None,
            method=method,
            timer=self.timer,
            alloc=self.alloc,
            stats=dict(self.stats),
        )


def tile_spgemm(
    a: TileMatrix,
    b: TileMatrix,
    tnnz: Optional[int] = None,
    step1_method: str = "expand",
    intersect_method: str = "expand",
    force_accumulator: Optional[str] = None,
    keep_empty_tiles: bool = True,
    value_dtype=np.float64,
    budget_bytes: Optional[int] = None,
    fault_plan=None,
    backend=None,
) -> TileSpGEMMResult:
    """Multiply two tiled sparse matrices with the TileSpGEMM algorithm.

    Parameters
    ----------
    a, b:
        Inputs in tiled form with equal tile sizes (the paper assumes the
        tiled format is the resident format, e.g. across AMG levels).
    tnnz:
        Adaptive-accumulator threshold; ``None`` resolves to
        :func:`~repro.core.step3.default_tnnz` (the paper's 192 for 16x16
        tiles, the same 75 %-of-capacity ratio for other tile sizes).
    step1_method:
        ``"expand"`` (vectorised) or ``"hash"`` (NSPARSE-like, the paper's
        choice) for the tile-layout symbolic SpGEMM.
    intersect_method:
        ``"expand"`` for the vectorised global pair enumeration, or
        ``"binary"`` / ``"merge"`` for the per-tile Algorithm 2 loops.
    force_accumulator:
        ``"sparse"`` / ``"dense"`` disables adaptive selection (ablation).
    keep_empty_tiles:
        Keep candidate tiles that end up with zero nonzeros, as the CUDA
        implementation does (they cost space but no correctness).
    value_dtype:
        Precision of the numeric products (``np.float16`` emulates the
        half-precision tSparse-comparison mode; see
        :func:`repro.core.step3.step3_numeric`).
    budget_bytes:
        Optional logical device-memory budget; exceeding it raises
        :class:`~repro.errors.DeviceOOMError` at the offending allocation
        (recover with :func:`repro.runtime.chunked.chunked_tile_spgemm` or
        :func:`repro.runtime.policy.run_resilient`).
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` observing this
        run's allocations and steps.  Both parameters default to the
        active :func:`~repro.runtime.context.execution_context`.
    backend:
        Kernel backend for the steps' hot inner kernels — a registered
        name (``"numpy"``, ``"pyloops"``, ...), a
        :class:`~repro.backend.KernelSet`, or ``None`` for the ambient
        default (process default, then ``REPRO_BACKEND``, then
        ``numpy``; see :mod:`repro.backend`).  Conformant backends
        produce byte-identical results; the chosen name is recorded in
        ``stats["backend"]`` and on the run's trace span.

    Returns
    -------
    TileSpGEMMResult
    """
    if a.tile_size != b.tile_size:
        raise InvalidInputError("A and B must use the same tile size")
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: A is {a.shape[0]}x{a.shape[1]}, "
            f"B is {b.shape[0]}x{b.shape[1]}"
        )
    kernels = resolve_backend(backend)
    with execution_context(budget_bytes=budget_bytes, fault_plan=fault_plan):
        return _tile_spgemm_under_context(
            a,
            b,
            tnnz=tnnz,
            step1_method=step1_method,
            intersect_method=intersect_method,
            force_accumulator=force_accumulator,
            keep_empty_tiles=keep_empty_tiles,
            value_dtype=value_dtype,
            kernels=kernels,
        )


def _tile_spgemm_under_context(
    a: TileMatrix,
    b: TileMatrix,
    tnnz: Optional[int],
    step1_method: str,
    intersect_method: str,
    force_accumulator: Optional[str],
    keep_empty_tiles: bool,
    value_dtype,
    kernels,
) -> TileSpGEMMResult:
    timer = PhaseTimer()
    alloc = AllocationTracker()
    T = a.tile_size
    if tnnz is None:
        tnnz = default_tnnz(T)
    obs = current_obs()
    tracer = obs.tracer

    with tracer.span(
        "tile_spgemm",
        cat="algorithm",
        shape_a=list(a.shape),
        shape_b=list(b.shape),
        nnz_a=int(a.nnz),
        nnz_b=int(b.nnz),
        tile_size=T,
        backend=kernels.name,
    ):
        # --------------------------------------------------------- step 1
        alloc.set_phase("step1")
        note_step("step1")
        with timer.phase("step1"), tracer.span("step1", cat="step", method=step1_method):
            layout = step1_tile_layout(
                a.tile_pattern_csr(), b.tile_pattern_csr(), method=step1_method
            )
        with timer.phase("malloc"), tracer.span("malloc", cat="step"):
            alloc.alloc("tilePtr_C", layout.tileptr.size * 4)
            alloc.alloc("tileColIdx_C", layout.num_tiles * 4)

        # --------------------------------------------------------- step 2
        alloc.set_phase("step2")
        note_step("step2")
        with timer.phase("step2"), tracer.span(
            "step2", cat="step", method=intersect_method, backend=kernels.name
        ):
            if intersect_method == "expand":
                pairs = enumerate_pairs_expand(a, b)
            else:
                pairs = enumerate_pairs_intersect(
                    a,
                    b,
                    c_tilerow=layout.tile_rowidx(),
                    c_tilecol=layout.tilecolidx,
                    method=intersect_method,
                )
            _check_layout_matches(layout, pairs)
            sym = step2_symbolic(a, b, pairs, backend=kernels)
        with timer.phase("malloc"), tracer.span("malloc", cat="step"):
            alloc.alloc("tileNnz_C", (pairs.num_c_tiles + 1) * 4)
            alloc.alloc("rowPtr_C", pairs.num_c_tiles * T)
            alloc.alloc("mask_C", pairs.num_c_tiles * T * sym.mask.dtype.itemsize)
            alloc.alloc("idx_C", sym.nnz * 1)
            alloc.alloc("val_C", sym.nnz * 8)

        # --------------------------------------------------------- step 3
        alloc.set_phase("step3")
        note_step("step3")
        with timer.phase("step3"), tracer.span(
            "step3", cat="step", tnnz=tnnz, backend=kernels.name
        ):
            num = step3_numeric(
                a,
                b,
                pairs,
                sym,
                tnnz=tnnz,
                force_accumulator=force_accumulator,
                value_dtype=value_dtype,
                backend=kernels,
            )

    c = TileMatrix(
        (a.shape[0], b.shape[1]),
        T,
        _tileptr_from_rows(pairs.c_tilerow, layout.num_tile_rows),
        pairs.c_tilecol,
        sym.tilennz,
        sym.rowptr,
        num.rowidx,
        num.colidx,
        num.val,
        sym.mask,
        check=False,
    )
    if not keep_empty_tiles:
        c = c.drop_empty_tiles()

    stats = collect_stats(a, b, pairs, sym, num, layout)
    stats["backend"] = kernels.name
    stats["backend_tier"] = kernels.tier.value
    if obs.enabled:
        _record_obs_metrics(obs.metrics, stats)
        profiler = obs.profile
        if profiler.enabled:
            profiler.record_run(stats, timer, row_offset=current_row_offset())
    return TileSpGEMMResult(
        c=c, timer=timer, alloc=alloc, stats=stats, pairs=pairs, symbolic=sym
    )


def tile_spgemm_from_csr(a_csr, b_csr, tile_size: int = TILE, **kwargs) -> TileSpGEMMResult:
    """Convenience wrapper: convert CSR inputs then run TileSpGEMM.

    Conversion time is recorded in the result's ``format_conversion`` phase
    (the quantity Figure 12 compares against a single SpGEMM).
    """
    timer = PhaseTimer()
    with timer.phase("format_conversion"), current_obs().tracer.span(
        "format_conversion", cat="step"
    ):
        a = TileMatrix.from_csr(a_csr, tile_size)
        b = TileMatrix.from_csr(b_csr, tile_size)
    result = tile_spgemm(a, b, **kwargs)
    result.timer.merge(timer)
    return result


def _record_obs_metrics(metrics, stats: Dict[str, object]) -> None:
    """Record the algorithm's decision-point counters for one run.

    Counter glossary in ``docs/OBSERVABILITY.md``; the values mirror the
    ``collect_stats`` dictionary exactly (the observability tests assert
    the equality), so the metrics are as deterministic as the run.
    """
    metrics.inc("tilespgemm_runs_total")
    backend = stats.get("backend")
    if backend:
        metrics.inc("backend_runs_total", backend=str(backend))
    metrics.inc("tile_pairs_matched_total", int(np.asarray(stats["pairs_per_tile"]).sum()))
    metrics.inc("atomic_or_ops_total", int(stats["symbolic_ops"]))
    metrics.inc("atomic_add_ops_total", int(stats["num_products"]))
    metrics.inc("accumulator_tiles_total", int(stats["sparse_tiles"]), kind="sparse")
    metrics.inc("accumulator_tiles_total", int(stats["dense_tiles"]), kind="dense")
    metrics.inc("mask_popcount_bits_total", int(stats["nnz_c"]))
    metrics.inc("c_tiles_total", int(stats["num_c_tiles"]))
    metrics.inc("c_nnz_total", int(stats["nnz_c"]))
    metrics.inc("flops_total", int(stats["flops"]))
    tile_nnz = np.asarray(stats["tile_nnz_counts"])
    if tile_nnz.size:
        metrics.observe_many("tile_nnz", tile_nnz.tolist())


def _tileptr_from_rows(tile_rows: np.ndarray, num_tile_rows: int) -> np.ndarray:
    tileptr = np.zeros(num_tile_rows + 1, dtype=np.int64)
    if tile_rows.size:
        np.cumsum(np.bincount(tile_rows, minlength=num_tile_rows), out=tileptr[1:])
    return tileptr


def _check_layout_matches(layout: TileLayout, pairs: TilePairs) -> None:
    """Step 1's candidate tiles must equal the tiles the pairs touch."""
    if layout.num_tiles != pairs.num_c_tiles:
        raise AssertionError(
            "step 1 layout disagrees with pair enumeration: "
            f"{layout.num_tiles} vs {pairs.num_c_tiles} candidate tiles"
        )


def collect_stats(
    a: TileMatrix,
    b: TileMatrix,
    pairs: TilePairs,
    sym: SymbolicResult,
    num: NumericResult,
    layout: TileLayout,
) -> Dict[str, object]:
    """Assemble the run statistics / cost-model inputs dictionary.

    Keys
    ----
    ``num_products``, ``flops`` — work of the numeric phase;
    ``num_c_tiles``, ``nnz_c`` — output size;
    ``pairs_per_tile`` — matched pairs per candidate tile (load balance);
    ``intersect_len_a``/``_b`` — intersection list lengths per tile;
    ``symbolic_ops`` — mask OR count; ``tile_flops_step1`` — step-1 work;
    ``sparse_tiles``/``dense_tiles`` — accumulator selection outcome;
    ``products_per_tile`` — numeric work per candidate tile.
    """
    pairs_per_tile = np.diff(pairs.pair_ptr)
    # Numeric products per candidate tile: rebuild from per-pair counts.
    from repro.core.step3 import _pair_product_counts
    from repro.util.bits import popcount16

    b_row_len = popcount16(b.mask).astype(np.int64)
    pair_products = _pair_product_counts(a, b_row_len, pairs, a.tile_nnz_counts())
    products_per_tile = np.zeros(pairs.num_c_tiles, dtype=np.int64)
    if pair_products.size:
        np.add.at(products_per_tile, pairs.pair_c_slot(), pair_products)

    return {
        "num_products": num.num_products,
        "flops": num.num_products * 2,
        "num_c_tiles": pairs.num_c_tiles,
        "nnz_c": sym.nnz,
        "pairs_per_tile": pairs_per_tile,
        "intersect_len_a": pairs.len_a,
        "intersect_len_b": pairs.len_b,
        "symbolic_ops": sym.symbolic_ops,
        "pair_a_nnz": sym.pair_a_nnz,
        "tile_flops_step1": layout.tile_flops,
        "num_tiles_a": a.num_tiles,
        "num_tiles_b": b.num_tiles,
        "nnz_a": a.nnz,
        "nnz_b": b.nnz,
        "sparse_tiles": num.sparse_tiles,
        "dense_tiles": num.dense_tiles,
        "products_per_tile": products_per_tile,
        "tile_nnz_counts": sym.tile_nnz_counts,
        "tile_use_dense": num.use_dense,
        "tile_size": a.tile_size,
        "c_tilerow": pairs.c_tilerow,
        "tnnz": num.tnnz,
    }
