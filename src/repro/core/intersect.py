"""Sorted-set intersection kernels for step 2 of TileSpGEMM.

To compute tile ``C_ij``, TileSpGEMM must match the non-empty tiles of
``A``'s tile row ``i`` against the non-empty tiles of ``B``'s tile column
``j``: the intersection of two sorted index lists (paper Algorithm 2,
lines 6–18).  The paper evaluates two strategies and picks binary search:

* **merge** — two pointers walk both lists (``O(len_a + len_b)`` serial
  steps; poor GPU parallelism because the walk is sequential);
* **binary search** — one thread per element of the *shorter* list
  searches the longer list (``O(min * log(max))`` with ``min``-way
  parallelism).  The paper additionally narrows each search's left bound
  to just past the previous match, which this implementation mirrors.

Both are implemented here with identical results, along with closed-form
work/depth cost estimates that the GPU execution model uses to reproduce
the paper's observation that binary search wins on GPUs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "intersect_merge",
    "intersect_binary",
    "intersect",
    "binary_search_cost",
    "merge_cost",
]


def intersect_merge(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Intersect two strictly increasing int arrays by two-pointer merge.

    Returns
    -------
    (pos_a, pos_b):
        Positions of the common values in ``a`` and ``b`` respectively.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    pos_a = []
    pos_b = []
    i = j = 0
    na, nb = a.size, b.size
    while i < na and j < nb:
        av, bv = a[i], b[j]
        if av == bv:
            pos_a.append(i)
            pos_b.append(j)
            i += 1
            j += 1
        elif av < bv:
            i += 1
        else:
            j += 1
    return (
        np.asarray(pos_a, dtype=np.int64),
        np.asarray(pos_b, dtype=np.int64),
    )


def intersect_binary(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Intersect two strictly increasing int arrays by binary search.

    Each element of the shorter array is binary-searched in the longer
    one, with the left bound advanced past the previous match — the exact
    narrowing optimisation of the paper's Algorithm 2.  NumPy's
    ``searchsorted`` performs the batched binary searches; the narrowing is
    implicit because results of a sorted-needle batched search are already
    monotone.

    Returns positions in the same ``(pos_a, pos_b)`` convention as
    :func:`intersect_merge` regardless of which array was shorter.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    swapped = a.size > b.size
    short, long_ = (b, a) if swapped else (a, b)
    if short.size == 0 or long_.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    loc = np.searchsorted(long_, short)
    in_range = loc < long_.size
    hit = np.zeros(short.size, dtype=bool)
    hit[in_range] = long_[loc[in_range]] == short[in_range]
    pos_short = np.flatnonzero(hit)
    pos_long = loc[hit]
    if swapped:
        return pos_long, pos_short
    return pos_short, pos_long


def intersect(a: np.ndarray, b: np.ndarray, method: str = "binary") -> Tuple[np.ndarray, np.ndarray]:
    """Dispatch to :func:`intersect_binary` or :func:`intersect_merge`."""
    if method == "binary":
        return intersect_binary(a, b)
    if method == "merge":
        return intersect_merge(a, b)
    raise ValueError(f"unknown intersection method {method!r}")


def binary_search_cost(len_a: np.ndarray, len_b: np.ndarray) -> np.ndarray:
    """Parallel-depth cost (per-warp cycles proxy) of the binary variant.

    One warp handles one C tile; the ``min(len_a, len_b)`` searches run
    across the warp's lanes in waves of 32, each search costing
    ``log2(max_len) + 1`` comparisons.
    """
    len_a = np.asarray(len_a, dtype=np.float64)
    len_b = np.asarray(len_b, dtype=np.float64)
    short = np.minimum(len_a, len_b)
    long_ = np.maximum(len_a, len_b)
    waves = np.ceil(short / 32.0)
    per_search = np.log2(np.maximum(long_, 2.0)) + 1.0
    return waves * per_search


def merge_cost(len_a: np.ndarray, len_b: np.ndarray) -> np.ndarray:
    """Parallel-depth cost of the serial two-pointer merge.

    The merge walk is inherently sequential: one lane of the warp performs
    ``len_a + len_b`` steps while the rest idle, which is exactly why the
    paper found it slower than binary search.
    """
    len_a = np.asarray(len_a, dtype=np.float64)
    len_b = np.asarray(len_b, dtype=np.float64)
    return len_a + len_b
