"""Level-scheduled sparse triangular solve (the group's SpTRSV line).

The TileSpGEMM authors' companion work (swSpTRSV, PPoPP'18; tiled SpTRSV
blocks, ICPP'20 — the paper's references [102]/[84]) optimises ``L x = b``
for sparse lower-triangular ``L``.  A sparse triangular solve is also what
AMG's Gauss-Seidel smoothers apply every cycle, so this module gives the
solver stack its remaining kernel:

* :func:`level_schedule` — partition the unknowns into dependency levels
  (all unknowns of one level solve in parallel: the classic set-based
  scheduling of Saltz/Anderson that the tiled SpTRSV papers build on);
* :func:`sptrsv` — execute the solve level by level, vectorised within
  each level;
* :class:`LevelScheduleStats` — level count and width histogram, the
  parallelism profile the SpTRSV papers analyse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix

__all__ = ["LevelScheduleStats", "level_schedule", "sptrsv"]


@dataclass
class LevelScheduleStats:
    """Parallelism profile of a triangular matrix's dependency DAG."""

    num_levels: int
    level_sizes: np.ndarray

    @property
    def max_parallelism(self) -> int:
        return int(self.level_sizes.max()) if self.level_sizes.size else 0

    @property
    def average_parallelism(self) -> float:
        if self.num_levels == 0:
            return 0.0
        return float(self.level_sizes.sum() / self.num_levels)


def level_schedule(l: CSRMatrix) -> Tuple[List[np.ndarray], LevelScheduleStats]:
    """Dependency levels of a lower-triangular system.

    Row ``i``'s level is ``1 + max(level of its off-diagonal columns)``;
    rows with no off-diagonal entries form level 0.  Rows within one level
    are mutually independent and solve in parallel.

    Raises ``ValueError`` if ``l`` has entries above the diagonal.
    """
    n = l.shape[0]
    if l.shape[0] != l.shape[1]:
        raise ValueError("triangular solve needs a square matrix")
    rows = l.row_indices_expanded()
    if l.nnz and np.any(l.indices > rows):
        raise ValueError("matrix has entries above the diagonal")

    level = np.zeros(n, dtype=np.int64)
    # Rows are topologically ordered in a lower-triangular matrix (row i
    # depends only on j < i), so one forward sweep suffices.
    for i in range(n):
        lo, hi = l.indptr[i], l.indptr[i + 1]
        cols = l.indices[lo:hi]
        off = cols[cols < i]
        if off.size:
            level[i] = level[off].max() + 1
    num_levels = int(level.max()) + 1 if n else 0
    levels = [np.flatnonzero(level == k) for k in range(num_levels)]
    sizes = np.array([lv.size for lv in levels], dtype=np.int64)
    return levels, LevelScheduleStats(num_levels=num_levels, level_sizes=sizes)


def sptrsv(l: CSRMatrix, b: np.ndarray, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L``, level by level.

    Parameters
    ----------
    l:
        Lower-triangular matrix; the diagonal must be stored and nonzero
        unless ``unit_diagonal`` is set.
    b:
        Right-hand side.
    unit_diagonal:
        Treat the diagonal as all ones (any stored diagonal is ignored).
    """
    n = l.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError("right-hand side length mismatch")
    levels, _ = level_schedule(l)

    rows_all = l.row_indices_expanded()
    diag = np.zeros(n)
    on_diag = rows_all == l.indices
    diag[rows_all[on_diag]] = l.val[on_diag]
    if unit_diagonal:
        diag = np.ones(n)
    elif n and np.any(diag == 0):
        raise ValueError("zero on the diagonal; the system is singular")

    x = np.zeros(n)
    for rows in levels:
        # Gather each level-row's off-diagonal dot product, vectorised
        # across the whole level (the per-level kernel of tiled SpTRSV).
        lo = l.indptr[rows]
        hi = l.indptr[rows + 1]
        lengths = hi - lo
        if lengths.sum() == 0:
            x[rows] = b[rows] / diag[rows]
            continue
        from repro.util.arrays import concat_ranges

        idx = concat_ranges(lo, lengths)
        cols = l.indices[idx]
        vals = l.val[idx]
        owner = np.repeat(rows, lengths)
        off = cols < owner
        contrib = np.zeros(n)
        np.add.at(contrib, owner[off], vals[off] * x[cols[off]])
        x[rows] = (b[rows] - contrib[rows]) / diag[rows]
    return x
