"""Step 3 of TileSpGEMM: the numeric phase (paper §3.3, Algorithm 3).

With ``C``'s per-tile structure known from step 2, this step computes the
values.  For every matched pair ``(A_ik, B_kj)`` and every nonzero
``a = (r, c, v)`` of the ``A`` tile, the products ``v * B_kj[c, *]`` are
accumulated into row ``r`` of the ``C`` tile.

The paper's *adaptive accumulator* is reproduced faithfully:

* **sparse accumulator** (tiles with ``nnz <= tnnz``, default 192 = 75 % of
  256): each product's destination offset inside the compacted tile is
  computed as ``rowptr[r] + rank`` where ``rank`` is the popcount of the
  tile row's mask bits below the product's column — the paper's
  mask-indexed direct accumulation;
* **dense accumulator** (denser tiles): products scatter-add into a dense
  ``T*T`` scratch tile, which is compacted through the mask afterwards.

The CUDA ``AtomicAdd`` becomes a ``np.bincount``-with-weights scatter-add.
Product expansion is chunked so peak temporary memory stays bounded — the
Python analogue of the kernels' bounded shared-memory working set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.backend import resolve_backend
from repro.core.pairs import TilePairs
from repro.core.step2 import SymbolicResult
from repro.core.tile_matrix import TileMatrix
from repro.util.arrays import concat_ranges, segment_positions

__all__ = [
    "NumericResult",
    "step3_numeric",
    "DEFAULT_TNNZ",
    "default_tnnz",
    "c_indices_from_masks",
]

#: The paper's accumulator-selection threshold: 75 % of a 16x16 tile.
DEFAULT_TNNZ: int = 192


def default_tnnz(tile_size: int) -> int:
    """The accumulator-selection threshold for a given tile size.

    The paper fixes 192 for its 16x16 tiles — 75 % of the tile's 256-slot
    capacity.  The same ratio is applied to other tile sizes so that the
    adaptive accumulator and the cost model's sparse/dense prediction
    (:mod:`repro.gpu.costmodel`) agree for every ``tile_size``, not just
    the paper's 16.

    Clamped to ``>= 1``: tile sizes below 2 would otherwise floor to a
    threshold of 0, silently forcing the dense path for every nonzero
    tile (``nnz > 0`` is true for any stored tile).
    """
    if tile_size == 16:
        return DEFAULT_TNNZ
    return max(1, (3 * tile_size * tile_size) // 4)


@dataclass
class NumericResult:
    """Output of the numeric phase.

    Attributes
    ----------
    rowidx, colidx:
        Local indices of ``C``'s nonzeros (derived from the step-2 masks).
    val:
        Values of ``C``'s nonzeros.
    num_products:
        Total intermediate products accumulated (``flops / 2``).
    sparse_tiles, dense_tiles:
        How many candidate tiles used each accumulator (cost-model input
        and ablation output).
    """

    rowidx: np.ndarray
    colidx: np.ndarray
    val: np.ndarray
    num_products: int
    sparse_tiles: int
    dense_tiles: int
    #: per-candidate-tile accumulator choice (``None`` until the phase ran)
    use_dense: Optional[np.ndarray] = field(default=None)
    #: the resolved accumulator-selection threshold this phase ran with
    #: (``None`` only for hand-built results) — the workload profiler's
    #: tnnz-decision capture reads it from ``collect_stats``
    tnnz: Optional[int] = field(default=None)


def c_indices_from_masks(
    sym: SymbolicResult, tile_size: int, backend=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialise ``C``'s local (row, col) indices from the step-2 masks.

    The tile-compaction kernel (``nth_set_bit``) comes from ``backend``
    (see :func:`repro.backend.resolve_backend`).
    """
    kernels = resolve_backend(backend)
    T = tile_size
    pc_flat = _row_popcounts(sym, kernels).reshape(-1)
    num_c = sym.mask.shape[0]
    rowidx = np.repeat(np.tile(np.arange(T, dtype=np.uint8), num_c), pc_flat)
    mask_rep = np.repeat(sym.mask.reshape(-1), pc_flat)
    rank = segment_positions(pc_flat)
    colidx = kernels.nth_set_bit(mask_rep, rank)
    return rowidx, colidx


def _row_popcounts(sym: SymbolicResult, kernels) -> np.ndarray:
    return kernels.popcount(sym.mask).astype(np.int64)


def step3_numeric(
    a: TileMatrix,
    b: TileMatrix,
    pairs: TilePairs,
    sym: SymbolicResult,
    tnnz: Optional[int] = None,
    chunk_products: int = 1 << 22,
    force_accumulator: str | None = None,
    mask_filter: bool = False,
    value_dtype=np.float64,
    backend=None,
) -> NumericResult:
    """Run the numeric phase.

    Parameters
    ----------
    a, b:
        Input tile matrices.
    pairs:
        Matched tile pairs from step 2's intersection.
    sym:
        Symbolic structure of ``C`` from step 2.
    tnnz:
        Accumulator-selection threshold.  ``None`` (the default) resolves
        to :func:`default_tnnz` — the paper's 192 for 16x16 tiles and the
        same 75 %-of-capacity ratio for other tile sizes, matching the
        cost model's sparse/dense prediction.
    chunk_products:
        Upper bound on intermediate products expanded at once.
    force_accumulator:
        ``"sparse"`` or ``"dense"`` to disable the adaptive selection
        (ablation hook); ``None`` keeps the paper's behaviour.
    mask_filter:
        When true, products whose destination bit is absent from the
        step-2 masks are *dropped* instead of accumulated.  Plain SpGEMM
        never needs this (every product's position is in the mask by
        construction); the masked-SpGEMM extension ANDs the masks with an
        output mask first, making some products invalid.
    value_dtype:
        Dtype the per-product multiplications are performed in.  The
        default is double precision (the paper's main evaluation);
        ``np.float16`` emulates the half-precision mode of the tSparse
        comparison (products rounded to fp16, accumulation in fp64 like
        the tensor cores' wider accumulator).
    backend:
        Kernel set serving the popcounts, the popcount-rank, the
        scatter-add accumulate and the tile compaction — a registered
        name, a :class:`~repro.backend.KernelSet`, or ``None`` for the
        ambient default (:func:`repro.backend.resolve_backend`).
        Conformant backends are byte-identical, so this changes speed,
        never the result.
    """
    kernels = resolve_backend(backend)
    T = a.tile_size
    if tnnz is None:
        tnnz = default_tnnz(T)
    num_c = pairs.num_c_tiles
    nnz_c = sym.nnz
    val_c = np.zeros(nnz_c, dtype=np.float64)

    # --- accumulator selection per candidate tile -----------------------
    if force_accumulator == "sparse":
        use_dense = np.zeros(num_c, dtype=bool)
    elif force_accumulator == "dense":
        use_dense = np.ones(num_c, dtype=bool)
    elif force_accumulator is None:
        use_dense = sym.tile_nnz_counts > tnnz
    else:
        raise ValueError(f"force_accumulator must be 'sparse', 'dense' or None")
    dense_slot = np.cumsum(use_dense) - 1  # compacted id among dense tiles
    num_dense = int(use_dense.sum())
    dense_buf = np.zeros(num_dense * T * T, dtype=np.float64)

    # --- per-pair product counts for chunking ---------------------------
    b_counts = b.tile_nnz_counts()
    # Row lengths of every B tile: popcount of its masks.
    b_row_len = kernels.popcount(b.mask).astype(np.int64)  # (num_tiles_B, T)
    # Global start of row c of B tile t: tilennz_B[t] + rowptr_B[t, c].
    b_row_start = b.tilennz[:-1, None] + b.rowptr.astype(np.int64)

    pair_c_slot = pairs.pair_c_slot()
    a_counts = a.tile_nnz_counts()
    pair_products = _pair_product_counts(a, b_row_len, pairs, a_counts)
    total_products = int(pair_products.sum())

    # --- chunked expansion + scatter-add --------------------------------
    # Chunk ends are rounded down to C-tile boundaries (``pairs.pair_ptr``)
    # whenever that still makes progress, so no tile's products straddle a
    # chunk.  A tile's accumulation order then depends only on its own pair
    # sequence and the chunk budget — never on which other tiles share the
    # run — which is what makes chunked re-execution and sharded parallel
    # execution bit-identical to the single-shot product.  A single tile
    # whose products exceed the budget is chunked internally at tile-local
    # offsets, which are equally partition-invariant.
    start = 0
    num_pairs = pairs.num_pairs
    csum = np.zeros(num_pairs + 1, dtype=np.int64)
    np.cumsum(pair_products, out=csum[1:])
    tile_bounds = pairs.pair_ptr
    while start < num_pairs:
        end = int(np.searchsorted(csum, csum[start] + chunk_products, side="left"))
        end = max(end, start + 1)
        end = min(end, num_pairs)
        if end < num_pairs:
            aligned = int(
                tile_bounds[np.searchsorted(tile_bounds, end, side="right") - 1]
            )
            if aligned > start:
                end = aligned
        _accumulate_chunk(
            a, b, pairs, sym, val_c, dense_buf, use_dense, dense_slot,
            pair_c_slot, a_counts, b_row_len, b_row_start, start, end, T,
            mask_filter, value_dtype, kernels,
        )
        start = end

    # --- compact the dense scratch tiles through the masks --------------
    rowidx_c, colidx_c = c_indices_from_masks(sym, T, backend=kernels)
    if num_dense:
        tile_of_nnz = np.repeat(np.arange(num_c, dtype=np.int64), sym.tile_nnz_counts)
        in_dense = use_dense[tile_of_nnz]
        d_slot = dense_slot[tile_of_nnz[in_dense]]
        pos = (
            d_slot * T * T
            + rowidx_c[in_dense].astype(np.int64) * T
            + colidx_c[in_dense].astype(np.int64)
        )
        val_c[in_dense] = dense_buf[pos]

    return NumericResult(
        rowidx=rowidx_c,
        colidx=colidx_c,
        val=val_c,
        num_products=total_products,
        sparse_tiles=int(num_c - num_dense),
        dense_tiles=num_dense,
        use_dense=use_dense,
        tnnz=int(tnnz),
    )


def _pair_product_counts(
    a: TileMatrix, b_row_len: np.ndarray, pairs: TilePairs, a_counts: np.ndarray
) -> np.ndarray:
    """Number of intermediate products generated by each matched pair."""
    if pairs.num_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.zeros(pairs.num_pairs, dtype=np.int64)
    # For pair p, sum over A-tile nonzeros (r, c) of len(B_tile row c).
    pair_a_nnz = a_counts[pairs.pair_a]
    a_nnz_idx = concat_ranges(a.tilennz[pairs.pair_a], pair_a_nnz)
    pair_of_nnz = np.repeat(np.arange(pairs.num_pairs, dtype=np.int64), pair_a_nnz)
    lengths = b_row_len[pairs.pair_b[pair_of_nnz], a.colidx[a_nnz_idx].astype(np.int64)]
    np.add.at(counts, pair_of_nnz, lengths)
    return counts


def _accumulate_chunk(
    a: TileMatrix,
    b: TileMatrix,
    pairs: TilePairs,
    sym: SymbolicResult,
    val_c: np.ndarray,
    dense_buf: np.ndarray,
    use_dense: np.ndarray,
    dense_slot: np.ndarray,
    pair_c_slot: np.ndarray,
    a_counts: np.ndarray,
    b_row_len: np.ndarray,
    b_row_start: np.ndarray,
    start: int,
    end: int,
    T: int,
    mask_filter: bool = False,
    value_dtype=np.float64,
    kernels=None,
) -> None:
    """Expand pairs [start, end) into products and scatter-add them."""
    kernels = resolve_backend(kernels)
    p_slice = slice(start, end)
    pa = pairs.pair_a[p_slice]
    pb = pairs.pair_b[p_slice]
    slots = pair_c_slot[p_slice]

    # Level 1: expand pairs into A-tile nonzeros.
    nnz_a = a_counts[pa]
    a_idx = concat_ranges(a.tilennz[pa], nnz_a)
    local_pair = np.repeat(np.arange(pa.size, dtype=np.int64), nnz_a)
    r = a.rowidx[a_idx].astype(np.int64)
    c = a.colidx[a_idx].astype(np.int64)
    va = a.val[a_idx]
    b_tile = pb[local_pair]
    slot_of_nnz = slots[local_pair]

    # Level 2: expand each A nonzero into B's matching tile row.
    seg_len = b_row_len[b_tile, c]
    b_idx = concat_ranges(b_row_start[b_tile, c], seg_len)
    src = np.repeat(np.arange(a_idx.size, dtype=np.int64), seg_len)
    if np.dtype(value_dtype) == np.float64:
        products = va[src] * b.val[b_idx]
    else:
        # Reduced-precision multiply, wider accumulate (tensor-core style).
        products = (
            va[src].astype(value_dtype) * b.val[b_idx].astype(value_dtype)
        ).astype(np.float64)
    prod_slot = slot_of_nnz[src]
    prod_r = r[src]
    prod_col = b.colidx[b_idx].astype(np.int64)

    if mask_filter:
        # Masked SpGEMM: drop products whose destination is outside the
        # (already mask-ANDed) step-2 structure.
        in_mask = (
            sym.mask[prod_slot, prod_r].astype(np.int64) >> prod_col
        ) & 1 == 1
        products = products[in_mask]
        prod_slot = prod_slot[in_mask]
        prod_r = prod_r[in_mask]
        prod_col = prod_col[in_mask]

    dense_sel = use_dense[prod_slot]
    if dense_sel.any():
        sel = dense_sel
        pos = (
            dense_slot[prod_slot[sel]] * T * T
            + prod_r[sel] * T
            + prod_col[sel]
        )
        kernels.scatter_add_into(dense_buf, pos, products[sel])
    if not dense_sel.all():
        sel = ~dense_sel
        slot_s = prod_slot[sel]
        r_s = prod_r[sel]
        col_s = prod_col[sel]
        rank = kernels.prefix_popcount(sym.mask[slot_s, r_s], col_s).astype(np.int64)
        pos = (
            sym.tilennz[slot_s]
            + sym.rowptr[slot_s, r_s].astype(np.int64)
            + rank
        )
        kernels.scatter_add_into(val_c, pos, products[sel])
