"""Command-line interface mirroring the paper artifact's ``./test`` binary.

The original artifact is invoked as::

    ./test -d 0 -aat 0 <path/to/matrix.mtx>

and prints the eighteen output lines listed in its Appendix A.8.  This CLI
reproduces that interface and output contract on the Python implementation
(``-d`` selects a *modelled* device instead of a CUDA ordinal)::

    python -m repro -d 0 -aat 0 path/to/matrix.mtx

Beyond the artifact, the CLI exposes the resilient runtime::

    python -m repro --memory-budget 64K --resilient path/to/matrix.mtx

Exit-code contract (one distinct code per error class; see
:mod:`repro.errors`):

====  ============================================
0     run completed, cross-check passed
1     run completed, cross-check FAILED
2     bad command line (unknown device, bad flag)
3     malformed matrix file or dimension mismatch
4     matrix file not found
5     device memory budget exceeded
6     transient kernel fault
7     communication failure
8     resilient runtime exhausted every fallback
====  ============================================

Every failure prints a single ``error: ...`` line to stderr — never a raw
traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.baselines import get_algorithm
from repro.baselines.base import flops_of_product
from repro.core import TileMatrix, tile_spgemm
from repro.errors import (
    EXIT_USAGE,
    CommFailure,
    DeviceOOMError,
    InvalidInputError,
    ResilienceExhausted,
    TransientKernelError,
    exit_code_for,
)
from repro.formats.mtx import read_mtx
from repro.gpu import RTX3060, RTX3090, estimate_run

__all__ = ["main"]

_DEVICES = [RTX3060, RTX3090]

_SIZE_SUFFIXES = {"k": 10**3, "m": 10**6, "g": 10**9}


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (decimal units)."""
    raw = text.strip().lower().removesuffix("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid byte count: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"byte count must be positive: {text!r}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TileSpGEMM on a MatrixMarket file (paper artifact interface)",
    )
    parser.add_argument(
        "-d",
        type=int,
        default=0,
        metavar="DEVICE",
        help="modelled GPU: 0 = RTX 3060, 1 = RTX 3090 (default 0)",
    )
    parser.add_argument(
        "-aat",
        type=int,
        default=0,
        choices=(0, 1),
        metavar="AAT",
        help="0 computes C = A^2 (default), 1 computes C = A A^T",
    )
    parser.add_argument(
        "--memory-budget",
        type=_parse_bytes,
        default=None,
        metavar="BYTES",
        help="logical device-memory budget (suffixes K/M/G); exceeding it "
        "fails with exit code 5 unless --resilient is given",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="run under the resilient runtime: chunked re-execution on OOM "
        "and the algorithm fallback ladder (see docs/RESILIENCE.md)",
    )
    parser.add_argument("matrix", help="path to a MatrixMarket (*.mtx) file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the artifact workflow; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if not 0 <= args.d < len(_DEVICES):
        print(f"error: unknown device ordinal {args.d}", file=sys.stderr)
        return EXIT_USAGE
    device = _DEVICES[args.d]
    try:
        return _run(args, device)
    except FileNotFoundError:
        print(f"error: matrix file not found: {args.matrix}", file=sys.stderr)
        return exit_code_for(FileNotFoundError())
    except (
        InvalidInputError,
        DeviceOOMError,
        CommFailure,
        TransientKernelError,
        ResilienceExhausted,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


def _run(args, device) -> int:
    t0 = time.perf_counter()
    coo = read_mtx(args.matrix)
    load_s = time.perf_counter() - t0
    a = coo.to_csr()

    # Lines 1-2: input matrix information.
    print(f"matrix: {args.matrix}")
    print(f"rows = {a.shape[0]}, cols = {a.shape[1]}, nnz = {a.nnz}")
    # Line 3: loading time.
    print(f"file loading time: {load_s:.6f} s")
    # Line 4: tile size.
    print("tile size: 16 x 16")

    b = a.transpose() if args.aat else a
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: cannot square a {a.shape[0]}x{a.shape[1]} "
            "matrix (use -aat 1 for rectangular inputs)"
        )
    # Line 5: flop count.
    print(f"#flops: {flops_of_product(a, b)}")

    # Line 6: CSR -> tiled conversion time.
    t0 = time.perf_counter()
    at = TileMatrix.from_csr(a)
    bt = at if not args.aat else TileMatrix.from_csr(b)
    conv_ms = (time.perf_counter() - t0) * 1e3
    print(f"CSR->tiled conversion time: {conv_ms:.3f} ms")
    # Line 7: tiled structure space.
    print(f"tiled data structure space: {at.memory_bytes() / 1e6:.6f} MB")

    if args.resilient:
        from repro.runtime import run_resilient

        rr = run_resilient(at, bt, device=device, budget_bytes=args.memory_budget)
        report = rr.report
        print(
            f"resilient run: method={report.method} attempts={report.num_attempts} "
            f"batches={report.batches} degraded={'yes' if report.degraded else 'no'}"
        )
        if report.faults:
            print(f"faults recovered: {report.num_faults}")
        result = rr.result
        result_c_csr = rr.c_csr()
        timer, alloc = result.timer, result.alloc
        est = rr.estimate
        nnz_c = result_c_csr.nnz
        num_tiles_c = rr.c.num_tiles if isinstance(rr.c, TileMatrix) else 0
        measured_gflops = result.gflops()
    else:
        result = tile_spgemm(at, bt, budget_bytes=args.memory_budget)
        result_c_csr = result.c.to_csr()
        timer, alloc = result.timer, result.alloc
        adapter = get_algorithm("tilespgemm")(a, b, a_tiled=at, b_tiled=bt)
        est = estimate_run(adapter, device)
        nnz_c = result.c.nnz
        num_tiles_c = result.c.num_tiles
        measured_gflops = result.gflops()

    # Lines 8-14: step and allocation times.
    for phase in ("step1", "step2", "step3"):
        print(f"{phase} time: {timer.seconds.get(phase, 0.0) * 1e3:.3f} ms")
    print(f"memory allocation time: {timer.seconds.get('malloc', 0.0) * 1e3:.3f} ms")
    print(f"peak logical device memory: {alloc.peak_bytes / 1e6:.6f} MB")
    if est is not None:
        print(f"estimated runtime on {device.name}: {est.seconds * 1e3:.3f} ms")
        print(f"estimated throughput on {device.name}: {est.gflops:.2f} GFlops")

    # Lines 15-17: result sizes and measured throughput.
    print(f"number of tiles of C: {num_tiles_c}")
    print(f"number of nonzeros of C: {nnz_c}")
    print(
        f"TileSpGEMM runtime: {timer.total * 1e3:.3f} ms "
        f"({measured_gflops:.3f} GFlops measured in Python)"
    )

    # Line 18: cross-check against another library's output.  When the
    # resilient runtime already degraded to the hash baseline, check
    # against the reference row-row loop instead of the method itself.
    ref_method = "nsparse_hash"
    if args.resilient and rr.report.method == "nsparse_hash":
        ref_method = "gustavson"
    reference = get_algorithm(ref_method)(a, b).c
    ok = result_c_csr.allclose(reference)
    print(f"check passed: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
