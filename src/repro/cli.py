"""Command-line interface mirroring the paper artifact's ``./test`` binary.

The original artifact is invoked as::

    ./test -d 0 -aat 0 <path/to/matrix.mtx>

and prints the eighteen output lines listed in its Appendix A.8.  This CLI
reproduces that interface and output contract on the Python implementation
(``-d`` selects a *modelled* device instead of a CUDA ordinal)::

    python -m repro -d 0 -aat 0 path/to/matrix.mtx

Exit status is 0 when the final cross-check against the NSPARSE-strategy
baseline passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.baselines import get_algorithm
from repro.baselines.base import flops_of_product
from repro.core import TileMatrix, tile_spgemm
from repro.formats.mtx import read_mtx
from repro.gpu import RTX3060, RTX3090, estimate_run

__all__ = ["main"]

_DEVICES = [RTX3060, RTX3090]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TileSpGEMM on a MatrixMarket file (paper artifact interface)",
    )
    parser.add_argument(
        "-d",
        type=int,
        default=0,
        metavar="DEVICE",
        help="modelled GPU: 0 = RTX 3060, 1 = RTX 3090 (default 0)",
    )
    parser.add_argument(
        "-aat",
        type=int,
        default=0,
        choices=(0, 1),
        metavar="AAT",
        help="0 computes C = A^2 (default), 1 computes C = A A^T",
    )
    parser.add_argument("matrix", help="path to a MatrixMarket (*.mtx) file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the artifact workflow; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if not 0 <= args.d < len(_DEVICES):
        print(f"error: unknown device ordinal {args.d}", file=sys.stderr)
        return 2
    device = _DEVICES[args.d]

    t0 = time.perf_counter()
    coo = read_mtx(args.matrix)
    load_s = time.perf_counter() - t0
    a = coo.to_csr()

    # Lines 1-2: input matrix information.
    print(f"matrix: {args.matrix}")
    print(f"rows = {a.shape[0]}, cols = {a.shape[1]}, nnz = {a.nnz}")
    # Line 3: loading time.
    print(f"file loading time: {load_s:.6f} s")
    # Line 4: tile size.
    print("tile size: 16 x 16")

    b = a.transpose() if args.aat else a
    # Line 5: flop count.
    print(f"#flops: {flops_of_product(a, b)}")

    # Line 6: CSR -> tiled conversion time.
    t0 = time.perf_counter()
    at = TileMatrix.from_csr(a)
    bt = at if not args.aat else TileMatrix.from_csr(b)
    conv_ms = (time.perf_counter() - t0) * 1e3
    print(f"CSR->tiled conversion time: {conv_ms:.3f} ms")
    # Line 7: tiled structure space.
    print(f"tiled data structure space: {at.memory_bytes() / 1e6:.6f} MB")

    result = tile_spgemm(at, bt)
    # Lines 8-14: step and allocation times.
    for phase in ("step1", "step2", "step3"):
        print(f"{phase} time: {result.timer.seconds.get(phase, 0.0) * 1e3:.3f} ms")
    print(f"memory allocation time: {result.timer.seconds.get('malloc', 0.0) * 1e3:.3f} ms")
    print(f"peak logical device memory: {result.alloc.peak_bytes / 1e6:.6f} MB")
    adapter = get_algorithm("tilespgemm")(a, b, a_tiled=at, b_tiled=bt)
    est = estimate_run(adapter, device)
    print(f"estimated runtime on {device.name}: {est.seconds * 1e3:.3f} ms")
    print(f"estimated throughput on {device.name}: {est.gflops:.2f} GFlops")

    # Lines 15-17: result sizes and measured throughput.
    print(f"number of tiles of C: {result.c.num_tiles}")
    print(f"number of nonzeros of C: {result.c.nnz}")
    print(
        f"TileSpGEMM runtime: {result.timer.total * 1e3:.3f} ms "
        f"({result.gflops():.3f} GFlops measured in Python)"
    )

    # Line 18: cross-check against another library's output.
    reference = get_algorithm("nsparse_hash")(a, b).c
    ok = result.c.to_csr().allclose(reference)
    print(f"check passed: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
