"""Command-line interface mirroring the paper artifact's ``./test`` binary.

The original artifact is invoked as::

    ./test -d 0 -aat 0 <path/to/matrix.mtx>

and prints the eighteen output lines listed in its Appendix A.8.  This CLI
reproduces that interface and output contract on the Python implementation
(``-d`` selects a *modelled* device instead of a CUDA ordinal)::

    python -m repro -d 0 -aat 0 path/to/matrix.mtx

Beyond the artifact, the CLI exposes the resilient runtime::

    python -m repro --memory-budget 64K --resilient path/to/matrix.mtx

the sharded parallel engine (see docs/PARALLEL.md; output stays
byte-identical to the serial run)::

    python -m repro --workers 4 --executor thread path/to/matrix.mtx

the estimation-driven adaptive planner (worker count, cost-weighted
shard bounds, accumulator threshold — all derived per run; see
docs/PARALLEL.md)::

    python -m repro --plan auto path/to/matrix.mtx

a pluggable kernel backend (see docs/BACKENDS.md; conformant backends
are byte-identical, so this changes speed, never output)::

    python -m repro --backend pyloops path/to/matrix.mtx

and the observability layer (see docs/OBSERVABILITY.md)::

    python -m repro --trace t.json --metrics m.prom --profile path/to/matrix.mtx

A ``bench`` subcommand family (see docs/BENCHMARKING.md) runs the
machine-readable benchmark tier::

    python -m repro bench run --suite ext --out BENCH.json
    python -m repro bench gate --candidate BENCH.json

and a ``serve`` subcommand family (see docs/SERVING.md) drives the
resilient async serving tier under generated load::

    python -m repro serve run --requests 32 --deadline 2.0
    python -m repro serve load --rate 50 --metrics serve.prom

and an ``obs`` subcommand family watches a running service live or
reports per-tenant SLO attainment from a metrics snapshot::

    python -m repro obs top --url http://127.0.0.1:9100
    python -m repro obs slo --metrics serve.prom --target 0.5

``--trace`` writes a Chrome trace-event file loadable in Perfetto,
``--metrics`` a Prometheus text dump of the kernel counters, ``--profile``
prints a top-spans wall-clock report, and ``--json`` replaces the
eighteen-line artifact output with one machine-readable JSON document.
Trace and metrics files are written even when the run fails, so a faulted
run leaves its partial profile behind for inspection.

Exit-code contract (one distinct code per error class; see
:mod:`repro.errors`):

====  ============================================
0     run completed, cross-check passed
1     run completed, cross-check FAILED
2     bad command line (unknown device, bad flag)
3     malformed matrix file or dimension mismatch
4     matrix file not found
5     device memory budget exceeded
6     transient kernel fault
7     communication failure
8     resilient runtime exhausted every fallback
10    malformed environment/configuration value
11    request shed by serving-tier admission control
12    request deadline exceeded
====  ============================================

Every failure prints a single ``error: ...`` line to stderr — never a raw
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from repro.baselines import get_algorithm
from repro.baselines.base import flops_of_product
from repro.core import TileMatrix, tile_spgemm
from repro.errors import (
    EXIT_USAGE,
    CommFailure,
    ConfigurationError,
    DeviceOOMError,
    InvalidInputError,
    ResilienceExhausted,
    TransientKernelError,
    exit_code_for,
)
from repro.formats.mtx import read_mtx
from repro.gpu import RTX3060, RTX3090, estimate_run
from repro.obs import MetricsRegistry, Tracer, emit_gpu_timeline, obs_context

__all__ = ["main"]

_DEVICES = [RTX3060, RTX3090]

_SIZE_SUFFIXES = {"k": 10**3, "m": 10**6, "g": 10**9}


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (decimal units)."""
    raw = text.strip().lower().removesuffix("b")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid byte count: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"byte count must be positive: {text!r}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TileSpGEMM on a MatrixMarket file (paper artifact interface)",
    )
    parser.add_argument(
        "-d",
        type=int,
        default=0,
        metavar="DEVICE",
        help="modelled GPU: 0 = RTX 3060, 1 = RTX 3090 (default 0)",
    )
    parser.add_argument(
        "-aat",
        type=int,
        default=0,
        choices=(0, 1),
        metavar="AAT",
        help="0 computes C = A^2 (default), 1 computes C = A A^T",
    )
    parser.add_argument(
        "--memory-budget",
        type=_parse_bytes,
        default=None,
        metavar="BYTES",
        help="logical device-memory budget (suffixes K/M/G); exceeding it "
        "fails with exit code 5 unless --resilient is given",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="run under the resilient runtime: chunked re-execution on OOM "
        "and the algorithm fallback ladder (see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the multiply on the sharded parallel engine with N pool "
        "workers (0 = one per CPU); defaults to $REPRO_WORKERS, else "
        "serial (see docs/PARALLEL.md)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default=None,
        help="pool kind for --workers; defaults to $REPRO_EXECUTOR, else "
        "'thread'",
    )
    parser.add_argument(
        "--plan",
        choices=("auto", "static"),
        default="static",
        help="'auto' derives an estimation-driven execution plan per run "
        "(worker count, cost-weighted shard bounds, tnnz threshold, "
        "backend — see docs/PARALLEL.md) and runs the engine under it; "
        "'static' (default) keeps the explicit/env configuration",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the tile pipeline (registered names: "
        "numpy, pyloops, fragment, and numba/numba-par when installed); "
        "defaults to $REPRO_BACKEND, else 'numpy' (see docs/BACKENDS.md)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="require an exact-tier (byte-reproducible) kernel backend: "
        "a fast-math backend named by --backend fails with a usage "
        "error, one from $REPRO_BACKEND with a config error (exit 10) — "
        "never a silent downgrade of the conformance guarantee",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write a Chrome trace-event profile of the run (open in "
        "Perfetto or chrome://tracing); written even if the run fails",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="OUT.prom",
        help="write kernel counters in Prometheus text format; written "
        "even if the run fails",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a top-spans wall-clock report after the run (enables "
        "internal tracing; goes to stderr under --json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="replace the artifact output lines with one JSON document on "
        "stdout (phase seconds and counts, resilience tallies, metrics)",
    )
    parser.add_argument("matrix", help="path to a MatrixMarket (*.mtx) file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the artifact workflow; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The benchmark tier (docs/BENCHMARKING.md): run/compare/gate/report
        # over machine-readable result documents.
        from repro.bench.cli import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        # The async serving tier (docs/SERVING.md): closed-loop burst and
        # open-loop load drivers over SpGEMMService.
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "obs":
        # Live/offline telemetry views (docs/OBSERVABILITY.md): `obs top`
        # watches a --listen endpoint, `obs slo` reports from a snapshot.
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if not 0 <= args.d < len(_DEVICES):
        print(f"error: unknown device ordinal {args.d}", file=sys.stderr)
        return EXIT_USAGE
    device = _DEVICES[args.d]

    from repro.backend import ConformanceTier, resolve_backend, use_backend

    required_tier = ConformanceTier.EXACT if args.exact else None
    if args.backend is not None or args.exact:
        # Validate the explicit name, and under --exact also the backend
        # the run would actually resolve (the process default / env).
        try:
            resolve_backend(args.backend, tier=required_tier)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return exit_code_for(exc)
        except InvalidInputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    tracer = Tracer() if (args.trace is not None or args.profile) else None
    metrics = MetricsRegistry() if args.metrics is not None else None
    try:
        # The scoped default makes every engine the run touches — serial,
        # parallel, resilient fallbacks, the cross-check adapter — resolve
        # the same kernel backend.
        with use_backend(args.backend) if args.backend is not None else nullcontext():
            if tracer is None and metrics is None:
                return _run(args, device, None, None)
            with obs_context(tracer=tracer, metrics=metrics):
                return _run(args, device, tracer, metrics)
    except FileNotFoundError:
        print(f"error: matrix file not found: {args.matrix}", file=sys.stderr)
        return exit_code_for(FileNotFoundError())
    except (
        InvalidInputError,
        DeviceOOMError,
        CommFailure,
        TransientKernelError,
        ResilienceExhausted,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    finally:
        # Dump the profile artifacts even when the run raised above, so a
        # faulted run still leaves its trace behind for inspection.
        if tracer is not None and args.trace is not None:
            tracer.write(args.trace)
        if metrics is not None and args.metrics is not None:
            metrics.write(args.metrics)
        if args.profile and tracer is not None:
            from repro.analysis.profiling import top_spans_report

            report = top_spans_report(tracer.to_chrome_trace())
            print(report, file=sys.stderr if args.json else sys.stdout)


def _run(args, device, tracer, metrics) -> int:
    doc: dict = {}

    def say(line: str) -> None:
        if not args.json:
            print(line)

    t0 = time.perf_counter()
    coo = read_mtx(args.matrix)
    load_s = time.perf_counter() - t0
    a = coo.to_csr()

    # Lines 1-2: input matrix information.
    say(f"matrix: {args.matrix}")
    say(f"rows = {a.shape[0]}, cols = {a.shape[1]}, nnz = {a.nnz}")
    # Line 3: loading time.
    say(f"file loading time: {load_s:.6f} s")
    # Line 4: tile size.
    say("tile size: 16 x 16")
    from repro.backend import backend_tier, default_backend_name

    backend_name = default_backend_name()
    try:
        tier_name = backend_tier(backend_name).value
    except InvalidInputError:
        # An unknown env-provided name fails later, at resolve time,
        # with the proper config-error classification — not here.
        tier_name = "unknown"
    if args.backend is not None:
        # Extra line only when explicitly requested, preserving the
        # artifact's default eighteen-line contract.
        say(f"kernel backend: {backend_name}")
    doc["matrix"] = args.matrix
    doc["rows"], doc["cols"], doc["nnz"] = a.shape[0], a.shape[1], a.nnz
    doc["load_seconds"] = load_s
    doc["tile_size"] = 16
    doc["backend"] = backend_name
    doc["backend_tier"] = tier_name

    b = a.transpose() if args.aat else a
    if a.shape[1] != b.shape[0]:
        raise InvalidInputError(
            f"dimension mismatch: cannot square a {a.shape[0]}x{a.shape[1]} "
            "matrix (use -aat 1 for rectangular inputs)"
        )
    # Line 5: flop count.
    doc["flops"] = flops_of_product(a, b)
    say(f"#flops: {doc['flops']}")

    # Line 6: CSR -> tiled conversion time.
    t0 = time.perf_counter()
    at = TileMatrix.from_csr(a)
    bt = at if not args.aat else TileMatrix.from_csr(b)
    conv_ms = (time.perf_counter() - t0) * 1e3
    say(f"CSR->tiled conversion time: {conv_ms:.3f} ms")
    # Line 7: tiled structure space.
    say(f"tiled data structure space: {at.memory_bytes() / 1e6:.6f} MB")
    doc["conversion_ms"] = conv_ms
    doc["tiled_bytes"] = at.memory_bytes()

    if args.resilient:
        from repro.runtime import run_resilient

        rr = run_resilient(at, bt, device=device, budget_bytes=args.memory_budget)
        report = rr.report
        say(
            f"resilient run: method={report.method} attempts={report.num_attempts} "
            f"batches={report.batches} degraded={'yes' if report.degraded else 'no'}"
        )
        if report.faults:
            say(f"faults recovered: {report.num_faults}")
        doc["resilience"] = {
            "method": report.method,
            "attempts": report.num_attempts,
            "failed_attempts": sum(1 for r in report.attempts if r.outcome != "ok"),
            "retries": sum(1 for r in report.attempts if r.backoff_s > 0),
            "fallbacks": max(0, len({r.method for r in report.attempts}) - 1),
            "batches": report.batches,
            "degraded": report.degraded,
            "faults": report.num_faults,
            "backoff_seconds": report.backoff_s,
        }
        result = rr.result
        result_c_csr = rr.c_csr()
        timer, alloc = result.timer, result.alloc
        est = rr.estimate
        nnz_c = result_c_csr.nnz
        num_tiles_c = rr.c.num_tiles if isinstance(rr.c, TileMatrix) else 0
        measured_gflops = result.gflops()
    else:
        from repro.runtime.parallel import parallel_tile_spgemm, resolve_workers

        if args.plan == "auto":
            from repro.runtime.planner import plan_execution

            from repro.backend import ConformanceTier

            plan = plan_execution(
                at,
                bt,
                workers=args.workers,
                executor=args.executor,
                backend=args.backend,
                tier=ConformanceTier.EXACT if args.exact else None,
            )
            result = parallel_tile_spgemm(
                at, bt, plan=plan, budget_bytes=args.memory_budget
            )
            say(
                f"plan: mode={plan.mode} workers={plan.workers} "
                f"shards={plan.shards} tnnz={plan.tnnz} "
                f"est_products={plan.estimate.get('products')} "
                f"band={plan.estimate.get('band')}"
            )
            doc["plan"] = plan.to_dict()
            doc["parallel"] = {
                "workers": result.stats.get("workers"),
                "shards": result.stats.get("shards"),
                "executor": result.stats.get("executor"),
                "fallback": bool(result.stats.get("parallel_fallback", False)),
            }
        elif resolve_workers(args.workers) > 1:
            result = parallel_tile_spgemm(
                at,
                bt,
                workers=resolve_workers(args.workers),
                executor=args.executor,
                budget_bytes=args.memory_budget,
            )
            say(
                f"parallel run: workers={result.stats.get('workers')} "
                f"shards={result.stats.get('shards')} "
                f"executor={result.stats.get('executor')}"
            )
            doc["parallel"] = {
                "workers": result.stats.get("workers"),
                "shards": result.stats.get("shards"),
                "executor": result.stats.get("executor"),
                "fallback": bool(result.stats.get("parallel_fallback", False)),
            }
        else:
            result = tile_spgemm(at, bt, budget_bytes=args.memory_budget)
        result_c_csr = result.c.to_csr()
        timer, alloc = result.timer, result.alloc
        adapter = get_algorithm("tilespgemm")(a, b, a_tiled=at, b_tiled=bt)
        est = estimate_run(adapter, device)
        nnz_c = result.c.nnz
        num_tiles_c = result.c.num_tiles
        measured_gflops = result.gflops()

    if tracer is not None and est is not None:
        # Virtual-GPU tracks: lay the cost model's kernel schedule onto
        # simulated SM slots in the same trace file.
        emit_gpu_timeline(tracer, est, device=device)

    # Lines 8-14: step and allocation times.
    for phase in ("step1", "step2", "step3"):
        say(f"{phase} time: {timer.seconds.get(phase, 0.0) * 1e3:.3f} ms")
    say(f"memory allocation time: {timer.seconds.get('malloc', 0.0) * 1e3:.3f} ms")
    say(f"peak logical device memory: {alloc.peak_bytes / 1e6:.6f} MB")
    if est is not None:
        say(f"estimated runtime on {device.name}: {est.seconds * 1e3:.3f} ms")
        say(f"estimated throughput on {device.name}: {est.gflops:.2f} GFlops")
        doc["estimate"] = {
            "device": device.name,
            "seconds": est.seconds,
            "gflops": est.gflops,
        }
    doc["phases"] = {
        name: {"seconds": st.total, "count": st.count}
        for name, st in timer.summary().items()
    }
    doc["peak_bytes"] = alloc.peak_bytes

    # Lines 15-17: result sizes and measured throughput.
    say(f"number of tiles of C: {num_tiles_c}")
    say(f"number of nonzeros of C: {nnz_c}")
    say(
        f"TileSpGEMM runtime: {timer.total * 1e3:.3f} ms "
        f"({measured_gflops:.3f} GFlops measured in Python)"
    )
    doc["c"] = {"num_tiles": num_tiles_c, "nnz": nnz_c}
    doc["runtime_seconds"] = timer.total
    doc["measured_gflops"] = measured_gflops

    # Line 18: cross-check against another library's output.  When the
    # resilient runtime already degraded to the hash baseline, check
    # against the reference row-row loop instead of the method itself.
    ref_method = "nsparse_hash"
    if args.resilient and rr.report.method == "nsparse_hash":
        ref_method = "gustavson"
    reference = get_algorithm(ref_method)(a, b).c
    ok = result_c_csr.allclose(reference)
    say(f"check passed: {'yes' if ok else 'NO'}")
    doc["check_passed"] = bool(ok)

    if args.json:
        if metrics is not None:
            doc["metrics"] = metrics.snapshot()
        print(json.dumps(doc, indent=2))
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
