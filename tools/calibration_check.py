#!/usr/bin/env python
"""Calibration harness: per-method estimated GFlops over the 18-matrix suite.

Used during development to keep the GPU cost model's *shape* aligned with
the paper's Figure 7 (who wins where, by what factor).  Prints a table and
the headline shape checks.
"""
import time
import numpy as np

from repro.matrices import representative_18
from repro.baselines import get_algorithm
from repro.gpu import estimate_run, RTX3090, RTX3060
from repro.analysis import geometric_mean

# Paper Figure 7 (RTX 3090, A^2), rows disentangled via the peak quotes in §4.2.
PAPER_TILE = {
    "pdb1HYS": 94.08, "consph": 74.59, "cant": 81.80, "pwtk": 86.29,
    "rma10": 72.63, "conf5_4-8x8-05": 51.95, "shipsec1": 72.50,
    "mac_econ_fwd500": 3.99, "mc2depi": 10.90, "cop20k_A": 5.19,
    "scircuit": 5.07, "webbase-1M": 12.78, "af_shell10": 92.25,
    "pkustk12": 69.46, "SiO2": 90.77, "case39": 158.16,
    "TSOPF_FS_b300_c2": 203.05, "gupta3": 134.37,
}

def main():
    methods = ["cusparse_spa", "bhsparse_esc", "nsparse_hash", "speck", "tilespgemm"]
    per_method = {m: [] for m in methods}
    scal = []
    t0 = time.time()
    tile_wins = 0
    for spec in representative_18():
        a = spec.matrix()
        row = {}
        for m in methods:
            res = get_algorithm(m)(a, a)
            e90 = estimate_run(res, RTX3090)
            row[m] = e90.gflops
            per_method[m].append(e90.gflops)
            if m == "tilespgemm":
                e60 = estimate_run(res, RTX3060)
                scal.append(e90.gflops / max(e60.gflops, 1e-12))
        best = max(row, key=row.get)
        if best == "tilespgemm":
            tile_wins += 1
        print(f"{spec.name:18s} " + " ".join(f"{m.split('_')[0][:6]}={row[m]:7.2f}" for m in methods)
              + f"  paperTile={PAPER_TILE[spec.name]:7.2f} best={best}")
    print("\ngeomeans:", {m: round(geometric_mean(v), 2) for m, v in per_method.items()})
    print("paper geomeans: cuSPARSE 30.8, bhSPARSE 11.5, NSPARSE 37.7, spECK 46.9, Tile 54.6")
    print(f"tile wins {tile_wins}/18 (paper: 14/18 on these 18)")
    print(f"tile 3090/3060 scalability geomean: {geometric_mean(scal):.2f} (paper 2.53)")
    print(f"elapsed {time.time()-t0:.1f}s")

if __name__ == "__main__":
    main()
