#!/usr/bin/env python
"""Consolidate ``benchmarks/results/*.txt`` into one experiment report.

Run after ``pytest benchmarks/ --benchmark-only``; produces a single
markdown document embedding every regenerated table/figure, in the
paper's order, ready to diff against EXPERIMENTS.md's recorded run.

Usage::

    python tools/make_report.py [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: Paper order of the artefacts.
ORDER = [
    ("table1_setup", "Table 1 — platforms and algorithms"),
    ("table2_matrices", "Table 2 — representative matrices"),
    ("motivation_webbase", "Section 2.3 — webbase motivation"),
    ("fig6_performance", "Figure 6 — performance vs compression rate + scalability"),
    ("fig7_representative", "Figure 7 — A^2 on the 18 representative matrices"),
    ("fig8_aat", "Figure 8 — A A^T on the asymmetric matrices"),
    ("fig9_memory", "Figure 9 — peak space cost at runtime"),
    ("fig10_breakdown", "Figure 10 — TileSpGEMM runtime breakdown"),
    ("fig11_format_space", "Figure 11 — format space cost"),
    ("fig12_conversion", "Figure 12 — conversion overhead"),
    ("fig13_tsparse", "Figure 13 — TileSpGEMM vs tSparse"),
    ("fig14_tsparse_breakdown", "Figure 14 — tSparse breakdown"),
    ("ablation_tilesize", "Ablation — tile size"),
    ("ablation_accumulator", "Ablation — accumulator threshold"),
    ("ablation_intersect", "Ablation — set intersection strategy"),
    ("ext_masked", "Extension — masked SpGEMM"),
    ("ext_spmv", "Extension — tiled SpMV + AMG solve"),
    ("ext_distributed", "Extension — distributed SUMMA"),
    ("ablation_accumulators_study", "Study — accumulator families (paper §5)"),
]


def build_report() -> str:
    lines = ["# Regenerated evaluation artefacts", ""]
    missing = []
    for stem, title in ORDER:
        path = RESULTS / f"{stem}.txt"
        lines.append(f"## {title}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            lines.append(f"*missing: run `pytest benchmarks/` to produce {path.name}*")
            missing.append(stem)
        lines.append("")
    if missing:
        lines.append(f"Missing artefacts: {', '.join(missing)}")
    return "\n".join(lines)


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("benchmarks/results/REPORT.md")
    out.write_text(build_report())
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
